(* Event-driven simulator: queue ordering, propagation, inertial glitch
   handling, clocking, buses, activity extraction. *)

module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic
module Sim = Logicsim.Simulator

let value_t =
  Alcotest.testable (fun ppf v -> Logic.pp ppf v) Logic.equal

(* Event_queue *)

let test_queue_ordering () =
  let q = Logicsim.Event_queue.create () in
  Logicsim.Event_queue.push q ~time:3.0 "c";
  Logicsim.Event_queue.push q ~time:1.0 "a";
  Logicsim.Event_queue.push q ~time:2.0 "b";
  let pop () =
    match Logicsim.Event_queue.pop q with
    | Some (_, x) -> x
    | None -> Alcotest.fail "queue empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Logicsim.Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Logicsim.Event_queue.create () in
  List.iter (fun s -> Logicsim.Event_queue.push q ~time:1.0 s) [ "x"; "y"; "z" ];
  let order =
    List.init 3 (fun _ ->
        match Logicsim.Event_queue.pop q with
        | Some (_, s) -> s
        | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] order

let test_queue_peek () =
  let q = Logicsim.Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None
    (Logicsim.Event_queue.peek_time q);
  Logicsim.Event_queue.push q ~time:5.0 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 5.0)
    (Logicsim.Event_queue.peek_time q)

let prop_queue_sorts =
  QCheck.Test.make ~name:"pops are time-sorted" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0.0 100.0))
    (fun times ->
      let q = Logicsim.Event_queue.create () in
      List.iter (fun t -> Logicsim.Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Logicsim.Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* Simulator *)

let inverter_chain n =
  let c = C.create "chain" in
  let a = C.add_input c "a" in
  let rec build net k = if k = 0 then net else build (C.add_gate c Cell.Inv [| net |]) (k - 1) in
  let y = build a n in
  C.mark_output c y "y";
  (c, a, y)

let test_propagation () =
  let c, a, y = inverter_chain 3 in
  let sim = Sim.create c in
  Sim.set_input sim a Logic.Zero;
  Sim.settle sim;
  Alcotest.check value_t "three inversions of 0" Logic.One (Sim.value sim y);
  Sim.set_input sim a Logic.One;
  Sim.settle sim;
  Alcotest.check value_t "three inversions of 1" Logic.Zero (Sim.value sim y)

let test_toggle_counting () =
  let c, a, _ = inverter_chain 2 in
  let sim = Sim.create c in
  Sim.set_input sim a Logic.Zero;
  Sim.settle sim;
  Sim.reset_toggles sim;
  Sim.set_input sim a Logic.One;
  Sim.settle sim;
  (* Both inverters toggle once. *)
  Alcotest.(check int) "two toggles" 2 (Sim.total_toggles sim);
  Sim.reset_toggles sim;
  Alcotest.(check int) "reset" 0 (Sim.total_toggles sim)

let test_set_input_validation () =
  let c, a, y = inverter_chain 1 in
  ignore a;
  let sim = Sim.create c in
  Alcotest.(check bool)
    "driving an internal net rejected" true
    (match Sim.set_input sim y Logic.One with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Glitch semantics: a -> XOR(a, INV(INV(a))) pulses when [a] toggles: the
   two XOR inputs change at different times (0 vs 2 inverter delays), and
   the 2.0-wide pulse survives the XOR's 1.9 inertial delay as a glitch. *)
let xor_glitch_circuit () =
  let c = C.create "glitch" in
  let a = C.add_input c "a" in
  let d1 = C.add_gate c Cell.Inv [| a |] in
  let d2 = C.add_gate c Cell.Inv [| d1 |] in
  let y = C.add_gate c Cell.Xor2 [| a; d2 |] in
  C.mark_output c y "y";
  (c, a, y)

let test_glitch_propagates () =
  let c, a, y = xor_glitch_circuit () in
  let sim = Sim.create c in
  Sim.set_input sim a Logic.Zero;
  Sim.settle sim;
  Alcotest.check value_t "steady low" Logic.Zero (Sim.value sim y);
  Sim.reset_toggles sim;
  Sim.set_input sim a Logic.One;
  Sim.settle sim;
  Alcotest.check value_t "back to low" Logic.Zero (Sim.value sim y);
  (* XOR output pulsed up and back down: 2 toggles, plus 2 inverters. *)
  let toggles = Sim.cell_toggles sim in
  let xor_id = match C.driver c y with Some (i, _) -> i | None -> -1 in
  Alcotest.(check int) "xor glitched" 2 toggles.(xor_id)

let test_short_pulse_swallowed () =
  (* Same structure but only ONE inverter between the reconvergent paths:
     skew 1.0 < XOR delay 1.9, so inertial filtering swallows the pulse. *)
  let c = C.create "pulse" in
  let a = C.add_input c "a" in
  let d1 = C.add_gate c Cell.Inv [| a |] in
  let y = C.add_gate c Cell.Xnor2 [| a; d1 |] in
  C.mark_output c y "y";
  let sim = Sim.create c in
  Sim.set_input sim a Logic.Zero;
  Sim.settle sim;
  Sim.reset_toggles sim;
  Sim.set_input sim a Logic.One;
  Sim.settle sim;
  let xor_id = match C.driver c y with Some (i, _) -> i | None -> -1 in
  Alcotest.(check int) "pulse swallowed" 0 (Sim.cell_toggles sim).(xor_id)

let test_dff_capture_and_init () =
  let c = C.create "reg" in
  let d = C.add_input c "d" in
  let q = C.add_dff ~init:Logic.One c d in
  C.mark_output c q "q";
  let sim = Sim.create c in
  Alcotest.check value_t "power-up value" Logic.One (Sim.value sim q);
  Sim.set_input sim d Logic.Zero;
  Sim.settle sim;
  Alcotest.check value_t "holds before clock" Logic.One (Sim.value sim q);
  Sim.clock_tick sim;
  Sim.settle sim;
  Alcotest.check value_t "captures on tick" Logic.Zero (Sim.value sim q)

let test_dff_chain_shifts () =
  let c = C.create "shift" in
  let d = C.add_input c "d" in
  let q1 = C.add_dff c d in
  let q2 = C.add_dff c q1 in
  C.mark_output c q2 "q2";
  let sim = Sim.create c in
  Sim.set_input sim d Logic.One;
  Sim.settle sim;
  Sim.clock_tick sim;
  Sim.settle sim;
  Alcotest.check value_t "one tick: not yet" Logic.Zero (Sim.value sim q2);
  Sim.clock_tick sim;
  Sim.settle sim;
  Alcotest.check value_t "two ticks: arrived" Logic.One (Sim.value sim q2)

let test_determinism () =
  let run () =
    let spec = Multipliers.Wallace.basic ~bits:8 in
    let sim = Sim.create spec.circuit in
    let rng = Numerics.Rng.create 17 in
    for _ = 1 to 10 do
      Logicsim.Bus.drive sim spec.a_bus (Numerics.Rng.int rng 256);
      Logicsim.Bus.drive sim spec.b_bus (Numerics.Rng.int rng 256);
      Sim.settle sim;
      Sim.clock_tick sim;
      Sim.settle sim
    done;
    (Sim.total_toggles sim, Sim.events_processed sim)
  in
  let t1, e1 = run () and t2, e2 = run () in
  Alcotest.(check int) "same toggles" t1 t2;
  Alcotest.(check int) "same events" e1 e2

(* Bus *)

let test_bus_roundtrip () =
  let values = Logicsim.Bus.to_values ~width:8 0xA5 in
  Alcotest.(check (option int)) "roundtrip" (Some 0xA5)
    (Logicsim.Bus.of_values values)

let test_bus_x_is_none () =
  let values = [| Logic.One; Logic.X |] in
  Alcotest.(check (option int)) "x bit" None (Logicsim.Bus.of_values values)

let test_bus_validation () =
  Alcotest.(check bool)
    "overflow rejected" true
    (match Logicsim.Bus.to_values ~width:4 16 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "negative rejected" true
    (match Logicsim.Bus.to_values ~width:4 (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_bus_roundtrip =
  QCheck.Test.make ~name:"bus to/of roundtrip" ~count:500
    QCheck.(int_range 0 65535)
    (fun v ->
      Logicsim.Bus.of_values (Logicsim.Bus.to_values ~width:16 v) = Some v)

(* Activity *)

let test_activity_bounds () =
  let spec = Multipliers.Wallace.basic ~bits:8 in
  let sim = Sim.create spec.circuit in
  let rng = Numerics.Rng.create 23 in
  let drive = Logicsim.Activity.random_drive ~rng ~buses:[ spec.a_bus; spec.b_bus ] in
  let r = Logicsim.Activity.measure ~warmup:2 ~cycles:30 ~drive sim in
  Alcotest.(check bool) "activity positive" true (r.activity > 0.0);
  Alcotest.(check bool) "activity sane" true (r.activity < 4.0);
  Alcotest.(check bool)
    "glitch ratio in [0,1)" true
    (r.glitch_ratio >= 0.0 && r.glitch_ratio < 1.0);
  Alcotest.(check int) "cycles recorded" 30 r.cycles;
  Alcotest.(check int)
    "per-cell length" (C.cell_count spec.circuit)
    (Array.length r.per_cell)

let test_activity_validation () =
  let c, a, _ = inverter_chain 1 in
  ignore a;
  let sim = Sim.create c in
  Alcotest.(check bool)
    "zero cycles rejected" true
    (match
       Logicsim.Activity.measure ~cycles:0 ~drive:(fun _ ~cycle:_ -> ()) sim
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_activity_constant_input_quiesces () =
  let c, a, _ = inverter_chain 4 in
  let sim = Sim.create c in
  Sim.set_input sim a Logic.One;
  Sim.settle sim;
  let drive sim ~cycle:_ = Sim.set_input sim a Logic.One in
  let r = Logicsim.Activity.measure ~warmup:1 ~cycles:10 ~drive sim in
  Alcotest.(check (float 1e-9)) "no switching" 0.0 r.activity

(* Faults *)

let and_gate_circuit () =
  let c = C.create "and" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  let y = C.add_gate c Cell.And2 [| a; b |] in
  C.mark_output c y "y";
  (c, a, b, y)

let test_faults_enumerate () =
  let c, _, _, _ = and_gate_circuit () in
  (* 3 nets (a, b, y) x 2 polarities. *)
  Alcotest.(check int) "six faults" 6 (List.length (Logicsim.Faults.enumerate c))

let test_faults_detection_logic () =
  let c, a, b, y = and_gate_circuit () in
  (* Vector (1,1) detects y stuck-at-0; vector (0,1) detects a stuck-at-1. *)
  let vec11 = [ (a, Logic.One); (b, Logic.One) ] in
  let vec01 = [ (a, Logic.Zero); (b, Logic.One) ] in
  let outputs = [ y ] in
  let detected fault vectors =
    let cov =
      Logicsim.Faults.coverage c ~faults:[ fault ] ~vectors ~outputs
    in
    cov.detected = 1
  in
  Alcotest.(check bool) "sa0 on y found by 11" true
    (detected { Logicsim.Faults.net = y; polarity = Logicsim.Faults.Stuck_at_0 } [ vec11 ]);
  Alcotest.(check bool) "sa0 on y missed by 01" false
    (detected { Logicsim.Faults.net = y; polarity = Logicsim.Faults.Stuck_at_0 } [ vec01 ]);
  Alcotest.(check bool) "sa1 on a found by 01" true
    (detected { Logicsim.Faults.net = a; polarity = Logicsim.Faults.Stuck_at_1 } [ vec01 ])

let test_faults_full_coverage_and_gate () =
  let c, a, b, y = and_gate_circuit () in
  (* The classic minimal AND test set {11, 01, 10} covers all six faults. *)
  let vectors =
    [
      [ (a, Logic.One); (b, Logic.One) ];
      [ (a, Logic.Zero); (b, Logic.One) ];
      [ (a, Logic.One); (b, Logic.Zero) ];
    ]
  in
  let cov = Logicsim.Faults.coverage c ~vectors ~outputs:[ y ] in
  Alcotest.(check (float 1e-9)) "100%" 100.0 cov.coverage_pct

let test_faults_undetectable_redundancy () =
  (* y = OR(a, AND(a, b)) absorbs the AND: its output stuck-at-0 is
     undetectable — a textbook redundant fault. *)
  let c = C.create "redundant" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  let inner = C.add_gate c Cell.And2 [| a; b |] in
  let y = C.add_gate c Cell.Or2 [| a; inner |] in
  C.mark_output c y "y";
  let all_vectors =
    List.concat_map
      (fun va -> List.map (fun vb -> [ (a, va); (b, vb) ]) [ Logic.Zero; Logic.One ])
      [ Logic.Zero; Logic.One ]
  in
  let cov =
    Logicsim.Faults.coverage c
      ~faults:[ { Logicsim.Faults.net = inner; polarity = Logicsim.Faults.Stuck_at_0 } ]
      ~vectors:all_vectors ~outputs:[ y ]
  in
  Alcotest.(check int) "redundant fault undetected" 0 cov.detected

let test_faults_coverage_grows_with_vectors () =
  let c = C.create "w4" in
  let a = C.add_input_bus c "a" 4 in
  let b = C.add_input_bus c "b" 4 in
  let p = Multipliers.Wallace.core c ~a ~b in
  C.mark_output_bus c p "p";
  let outputs = Array.to_list p in
  let cov count seed =
    let rng = Numerics.Rng.create seed in
    let vectors = Logicsim.Faults.random_vectors ~rng ~circuit:c ~count in
    (Logicsim.Faults.coverage c ~vectors ~outputs).coverage_pct
  in
  Alcotest.(check bool) "more vectors, no less coverage" true
    (cov 16 3 >= cov 2 3);
  Alcotest.(check bool) "16 vectors reach > 60%" true (cov 16 3 > 60.0)

let test_faults_reject_sequential () =
  let c = C.create "seq" in
  let d = C.add_input c "d" in
  let q = C.add_dff c d in
  C.mark_output c q "q";
  Alcotest.(check bool)
    "sequential rejected" true
    (match Logicsim.Faults.enumerate c with
    | _ -> false
    | exception Failure _ -> true)

(* Unboxed heap — the struct-of-arrays core both kernels schedule through;
   same contract as Event_queue, so the same ordering tests apply. *)

module Uheap = Logicsim.Unboxed_heap

let test_uheap_ordering () =
  let h = Uheap.create () in
  Uheap.push h ~time:3.0 ~a:30 ~b:300;
  Uheap.push h ~time:1.0 ~a:10 ~b:100;
  Uheap.push h ~time:2.0 ~a:20 ~b:200;
  let pop () =
    if not (Uheap.pop h) then Alcotest.fail "heap empty";
    (Uheap.top_time h, Uheap.top_a h, Uheap.top_b h)
  in
  Alcotest.(check (triple (float 0.0) int int)) "first" (1.0, 10, 100) (pop ());
  Alcotest.(check (triple (float 0.0) int int)) "second" (2.0, 20, 200) (pop ());
  Alcotest.(check (triple (float 0.0) int int)) "third" (3.0, 30, 300) (pop ());
  Alcotest.(check bool) "empty" true (Uheap.is_empty h);
  Alcotest.(check bool) "pop on empty" false (Uheap.pop h)

let test_uheap_fifo_ties () =
  let h = Uheap.create () in
  List.iter (fun k -> Uheap.push h ~time:1.0 ~a:k ~b:0) [ 0; 1; 2 ];
  let order =
    List.init 3 (fun _ ->
        if Uheap.pop h then Uheap.top_a h else -1)
  in
  Alcotest.(check (list int)) "insertion order on ties" [ 0; 1; 2 ] order

let test_uheap_peek_clear () =
  let h = Uheap.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None (Uheap.peek_time h);
  Uheap.push h ~time:5.0 ~a:1 ~b:2;
  Uheap.push h ~time:4.0 ~a:3 ~b:4;
  Alcotest.(check (option (float 0.0))) "peek" (Some 4.0) (Uheap.peek_time h);
  Alcotest.(check int) "length" 2 (Uheap.length h);
  Uheap.clear h;
  Alcotest.(check bool) "cleared" true (Uheap.is_empty h);
  (* The tie-break counter resets too: fresh pushes pop in fresh order. *)
  Uheap.push h ~time:1.0 ~a:7 ~b:0;
  Alcotest.(check bool) "usable after clear" true (Uheap.pop h);
  Alcotest.(check int) "payload survives" 7 (Uheap.top_a h)

let prop_uheap_sorted =
  QCheck.Test.make ~name:"unboxed heap pops time-sorted, ties FIFO" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 9))
    (fun raw ->
      (* Coarse integer times force plenty of ties. *)
      let h = Uheap.create () in
      List.iteri
        (fun i t -> Uheap.push h ~time:(float_of_int t) ~a:i ~b:(i * 2))
        raw;
      let rec drain last_time last_a =
        if not (Uheap.pop h) then true
        else begin
          let t = Uheap.top_time h and a = Uheap.top_a h in
          if t < last_time then false
          else if t = last_time && a <= last_a then false
          else drain t a
        end
      in
      drain neg_infinity (-1))

(* Differential: the compiled kernel must match the boxed reference kernel
   bit for bit — settled values, per-cell toggles, committed events, time —
   on every architecture of the catalog under identical stimulus. *)

module Ref = Logicsim.Reference
module Compiled = Logicsim.Compiled
module Bitpar = Logicsim.Bitpar

let drive_ref_bus r bus value =
  Array.iteri
    (fun i net ->
      Ref.set_input r net (Logic.of_bool ((value lsr i) land 1 = 1)))
    bus

let differential_arch label () =
  let spec = Multipliers.Catalog.build label in
  let sim = Sim.create spec.Multipliers.Spec.circuit in
  let r = Ref.create spec.Multipliers.Spec.circuit in
  let rng_c = Numerics.Rng.create 1009 and rng_r = Numerics.Rng.create 1009 in
  let bound = 1 lsl spec.Multipliers.Spec.bits in
  for _cycle = 1 to 3 do
    let xc = Numerics.Rng.int rng_c bound and yc = Numerics.Rng.int rng_c bound in
    Logicsim.Bus.drive sim spec.Multipliers.Spec.a_bus xc;
    Logicsim.Bus.drive sim spec.Multipliers.Spec.b_bus yc;
    Sim.settle sim;
    let xr = Numerics.Rng.int rng_r bound and yr = Numerics.Rng.int rng_r bound in
    drive_ref_bus r spec.Multipliers.Spec.a_bus xr;
    drive_ref_bus r spec.Multipliers.Spec.b_bus yr;
    Ref.settle r;
    for _ = 1 to spec.Multipliers.Spec.ticks_per_cycle do
      Sim.clock_tick sim;
      Sim.settle sim;
      Ref.clock_tick r;
      Ref.settle r
    done
  done;
  Alcotest.(check int)
    "committed events" (Ref.events_processed r) (Sim.events_processed sim);
  Alcotest.(check int)
    "total toggles" (Ref.total_toggles r) (Sim.total_toggles sim);
  Alcotest.(check (float 0.0)) "simulation time" (Ref.now r) (Sim.now sim);
  Alcotest.(check (array int))
    "per-cell toggles" (Ref.cell_toggles r) (Sim.cell_toggles sim);
  Alcotest.(check (array value_t))
    "settled net values" (Ref.snapshot_values r) (Sim.snapshot_values sim)

(* Glitch-ratio differential: Activity.measure (incremental dirty-set
   accounting on the compiled kernel) against a straight transcription of
   the original algorithm — full value snapshots and a full-circuit scan
   per cycle — running on the reference kernel. *)

let reference_activity ~warmup ~ticks_per_cycle ~cycles ~seed
    (spec : Multipliers.Spec.t) =
  let r = Ref.create spec.circuit in
  let rng = Numerics.Rng.create seed in
  let drive () =
    List.iter
      (fun bus ->
        let width = Array.length bus in
        let bound = if width >= 62 then max_int else 1 lsl width in
        drive_ref_bus r bus (Numerics.Rng.int rng bound))
      [ spec.a_bus; spec.b_bus ]
  in
  let run_cycle () =
    drive ();
    Ref.settle r;
    for _ = 1 to ticks_per_cycle do
      Ref.clock_tick r;
      Ref.settle r
    done
  in
  let necessary ~before ~after =
    let count = ref 0 in
    C.iter_cells
      (fun cell ->
        Array.iter
          (fun net ->
            match (before.(net), after.(net)) with
            | Logic.Zero, Logic.One | Logic.One, Logic.Zero -> incr count
            | (Logic.Zero | Logic.One | Logic.X), _ -> ())
          cell.outputs)
      spec.circuit
  ;
    !count
  in
  for _ = 1 to warmup do
    run_cycle ()
  done;
  Ref.reset_toggles r;
  let necessary_total = ref 0 in
  let before = ref (Ref.snapshot_values r) in
  for _ = 1 to cycles do
    run_cycle ();
    let after = Ref.snapshot_values r in
    necessary_total := !necessary_total + necessary ~before:!before ~after;
    before := after
  done;
  let total = Ref.total_toggles r in
  let n =
    C.fold_cells
      (fun acc cell ->
        match cell.kind with
        | Cell.Tie0 | Cell.Tie1 -> acc
        | _ -> acc + 1)
      0 spec.circuit
  in
  let glitch_ratio =
    if total = 0 then 0.0
    else
      Float.max 0.0
        (float_of_int (total - !necessary_total) /. float_of_int total)
  in
  (* Same association as Activity.measure: (total / cycles) / n. *)
  (float_of_int total /. float_of_int cycles /. float_of_int (max 1 n),
   glitch_ratio)

let compiled_activity ~warmup ~ticks_per_cycle ~cycles ~seed
    (spec : Multipliers.Spec.t) =
  let sim = Sim.create spec.circuit in
  let rng = Numerics.Rng.create seed in
  let drive =
    Logicsim.Activity.random_drive ~rng ~buses:[ spec.a_bus; spec.b_bus ]
  in
  let r =
    Logicsim.Activity.measure ~warmup ~ticks_per_cycle ~cycles ~drive sim
  in
  (r.activity, r.glitch_ratio)

let test_glitch_ratio_differential_sequential () =
  (* Registered I/O makes this a sequential circuit: exercises the
     incremental dirty-set path. *)
  let spec = Multipliers.Catalog.build "RCA" in
  let act_ref, glitch_ref =
    reference_activity ~warmup:2 ~ticks_per_cycle:spec.ticks_per_cycle
      ~cycles:4 ~seed:77 spec
  in
  let act_c, glitch_c =
    compiled_activity ~warmup:2 ~ticks_per_cycle:spec.ticks_per_cycle
      ~cycles:4 ~seed:77 spec
  in
  Alcotest.(check (float 0.0)) "activity bitwise" act_ref act_c;
  Alcotest.(check (float 0.0)) "glitch ratio bitwise" glitch_ref glitch_c

let test_glitch_ratio_differential_multitick () =
  (* A sequential-style architecture with an internal clock multiple. *)
  let spec = Multipliers.Catalog.build "Sequential" in
  let act_ref, glitch_ref =
    reference_activity ~warmup:1 ~ticks_per_cycle:spec.ticks_per_cycle
      ~cycles:3 ~seed:31 spec
  in
  let act_c, glitch_c =
    compiled_activity ~warmup:1 ~ticks_per_cycle:spec.ticks_per_cycle
      ~cycles:3 ~seed:31 spec
  in
  Alcotest.(check (float 0.0)) "activity bitwise" act_ref act_c;
  Alcotest.(check (float 0.0)) "glitch ratio bitwise" glitch_ref glitch_c

(* Bit-parallel engine *)

let wallace_core_circuit bits =
  let c = C.create "wcore" in
  let a = C.add_input_bus c "a" bits in
  let b = C.add_input_bus c "b" bits in
  let p = Multipliers.Wallace.core c ~a ~b in
  C.mark_output_bus c p "p";
  (c, a, b, p)

let test_bitpar_matches_event_sim () =
  (* 63 lanes of random three-valued input vectors (lane 0 left at
     power-up X) must settle to exactly the event kernel's values. *)
  let c, a, b, _ = wallace_core_circuit 4 in
  let inputs = Array.append a b in
  let st = Compiled.compile c in
  let bp = Bitpar.create st in
  let rng = Numerics.Rng.create 91 in
  let vectors =
    Array.init Bitpar.lanes (fun lane ->
        if lane = 0 then [||]
        else
          Array.map
            (fun net ->
              let r = Numerics.Rng.int rng 4 in
              let v = if r = 3 then Logic.X else Logic.of_bool (r land 1 = 1) in
              (net, v))
            inputs)
  in
  Array.iteri
    (fun lane vec ->
      Array.iter (fun (net, v) -> Bitpar.set_input bp ~net ~lane v) vec)
    vectors;
  Bitpar.run bp;
  let mismatches = ref 0 in
  Array.iteri
    (fun lane vec ->
      let sim = Sim.create c in
      Array.iter (fun (net, v) -> Sim.set_input sim net v) vec;
      Sim.settle sim;
      for net = 0 to C.net_count c - 1 do
        if not (Logic.equal (Sim.value sim net) (Bitpar.value bp ~net ~lane))
        then incr mismatches
      done)
    vectors;
  Alcotest.(check int) "all lanes, all nets agree" 0 !mismatches

let test_bitpar_adjacent_necessary () =
  (* Packing consecutive cycles into adjacent lanes reproduces the
     event-kernel necessary-transition count. *)
  let c, a, b, _ = wallace_core_circuit 4 in
  let st = Compiled.compile c in
  let bp = Bitpar.create st in
  let sim = Sim.create c in
  let rng = Numerics.Rng.create 57 in
  (* Lane 0 carries the power-up settled state. *)
  Array.iter
    (fun net -> Bitpar.set_input bp ~net ~lane:0 (Sim.value sim net))
    (Array.append a b);
  let cycles = 20 in
  let expected = ref 0 in
  let before = ref (Sim.snapshot_values sim) in
  for cycle = 1 to cycles do
    let xa = Numerics.Rng.int rng 16 and xb = Numerics.Rng.int rng 16 in
    Logicsim.Bus.drive sim a xa;
    Logicsim.Bus.drive sim b xb;
    Sim.settle sim;
    let after = Sim.snapshot_values sim in
    C.iter_cells
      (fun cell ->
        Array.iter
          (fun net ->
            match (!before.(net), after.(net)) with
            | Logic.Zero, Logic.One | Logic.One, Logic.Zero -> incr expected
            | (Logic.Zero | Logic.One | Logic.X), _ -> ())
          cell.outputs)
      c;
    before := after;
    Array.iteri
      (fun i net ->
        Bitpar.set_input bp ~net ~lane:cycle
          (Logic.of_bool ((xa lsr i) land 1 = 1)))
      a;
    Array.iteri
      (fun i net ->
        Bitpar.set_input bp ~net ~lane:cycle
          (Logic.of_bool ((xb lsr i) land 1 = 1)))
      b
  done;
  Bitpar.run bp;
  Alcotest.(check int)
    "necessary transitions" !expected
    (Bitpar.adjacent_necessary bp ~pairs:cycles)

let test_activity_batched_matches_reference () =
  (* A DFF-free circuit takes the bit-parallel accounting path; 150 cycles
     spans three 62-cycle batches including the carry-over lane. *)
  let c, a, b, _ = wallace_core_circuit 4 in
  let measure_compiled () =
    let sim = Sim.create c in
    let rng = Numerics.Rng.create 8 in
    let drive = Logicsim.Activity.random_drive ~rng ~buses:[ a; b ] in
    let r = Logicsim.Activity.measure ~warmup:2 ~cycles:150 ~drive sim in
    (r.activity, r.glitch_ratio)
  in
  let measure_reference () =
    let r = Ref.create c in
    let rng = Numerics.Rng.create 8 in
    let drive () =
      List.iter
        (fun bus ->
          let width = Array.length bus in
          let bound = if width >= 62 then max_int else 1 lsl width in
          drive_ref_bus r bus (Numerics.Rng.int rng bound))
        [ a; b ]
    in
    let run_cycle () =
      drive ();
      Ref.settle r;
      Ref.clock_tick r;
      Ref.settle r
    in
    for _ = 1 to 2 do
      run_cycle ()
    done;
    Ref.reset_toggles r;
    let necessary_total = ref 0 in
    let before = ref (Ref.snapshot_values r) in
    for _ = 1 to 150 do
      run_cycle ();
      let after = Ref.snapshot_values r in
      C.iter_cells
        (fun cell ->
          Array.iter
            (fun net ->
              match (!before.(net), after.(net)) with
              | Logic.Zero, Logic.One | Logic.One, Logic.Zero ->
                incr necessary_total
              | (Logic.Zero | Logic.One | Logic.X), _ -> ())
            cell.outputs)
        c;
      before := after
    done;
    let total = Ref.total_toggles r in
    let n =
      C.fold_cells
        (fun acc cell ->
          match cell.kind with
          | Cell.Tie0 | Cell.Tie1 -> acc
          | _ -> acc + 1)
        0 c
    in
    ( float_of_int total /. 150.0 /. float_of_int (max 1 n),
      if total = 0 then 0.0
      else
        Float.max 0.0
          (float_of_int (total - !necessary_total) /. float_of_int total) )
  in
  let act_c, glitch_c = measure_compiled () in
  let act_r, glitch_r = measure_reference () in
  Alcotest.(check (float 0.0)) "activity bitwise" act_r act_c;
  Alcotest.(check (float 0.0)) "glitch ratio bitwise" glitch_r glitch_c

let test_bitpar_fault_coverage_matches_scalar () =
  (* The chunked bit-parallel coverage must flag exactly the faults the
     per-vector zero-delay evaluation flags. *)
  let c, _, _, p = wallace_core_circuit 4 in
  let outputs = Array.to_list p in
  let rng = Numerics.Rng.create 12 in
  let vectors = Logicsim.Faults.random_vectors ~rng ~circuit:c ~count:12 in
  let faults = Logicsim.Faults.enumerate c in
  let cov = Logicsim.Faults.coverage c ~faults ~vectors ~outputs in
  (* Scalar re-implementation of detection, one vector at a time. *)
  let golden =
    List.map
      (fun inputs ->
        let nets = Logicsim.Faults.evaluate_with_fault c ~fault:None ~inputs in
        (inputs, List.map (fun n -> nets.(n)) outputs))
      vectors
  in
  let scalar_detected fault =
    List.exists
      (fun (inputs, expected) ->
        let nets =
          Logicsim.Faults.evaluate_with_fault c ~fault:(Some fault) ~inputs
        in
        List.exists2
          (fun n reference -> not (Logic.equal nets.(n) reference))
          outputs expected)
      golden
  in
  let scalar_undetected = List.filter (fun f -> not (scalar_detected f)) faults in
  Alcotest.(check int)
    "same undetected count"
    (List.length scalar_undetected)
    (List.length cov.undetected);
  Alcotest.(check bool)
    "same undetected faults" true
    (List.for_all2
       (fun (f1 : Logicsim.Faults.fault) (f2 : Logicsim.Faults.fault) ->
         f1.net = f2.net && f1.polarity = f2.polarity)
       scalar_undetected cov.undetected)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "logicsim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_queue_peek;
        ]
        @ qsuite [ prop_queue_sorts ] );
      ( "unboxed_heap",
        [
          Alcotest.test_case "ordering" `Quick test_uheap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_uheap_fifo_ties;
          Alcotest.test_case "peek/clear" `Quick test_uheap_peek_clear;
        ]
        @ qsuite [ prop_uheap_sorted ] );
      ( "simulator",
        [
          Alcotest.test_case "propagation" `Quick test_propagation;
          Alcotest.test_case "toggle counting" `Quick test_toggle_counting;
          Alcotest.test_case "input validation" `Quick test_set_input_validation;
          Alcotest.test_case "glitch propagates" `Quick test_glitch_propagates;
          Alcotest.test_case "short pulse swallowed" `Quick test_short_pulse_swallowed;
          Alcotest.test_case "dff capture/init" `Quick test_dff_capture_and_init;
          Alcotest.test_case "dff chain shifts" `Quick test_dff_chain_shifts;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "bus",
        [
          Alcotest.test_case "roundtrip" `Quick test_bus_roundtrip;
          Alcotest.test_case "x is none" `Quick test_bus_x_is_none;
          Alcotest.test_case "validation" `Quick test_bus_validation;
        ]
        @ qsuite [ prop_bus_roundtrip ] );
      ( "activity",
        [
          Alcotest.test_case "bounds" `Quick test_activity_bounds;
          Alcotest.test_case "validation" `Quick test_activity_validation;
          Alcotest.test_case "constant input quiesces" `Quick
            test_activity_constant_input_quiesces;
        ] );
      ( "faults",
        [
          Alcotest.test_case "enumerate" `Quick test_faults_enumerate;
          Alcotest.test_case "detection logic" `Quick test_faults_detection_logic;
          Alcotest.test_case "full coverage AND" `Quick
            test_faults_full_coverage_and_gate;
          Alcotest.test_case "undetectable redundancy" `Quick
            test_faults_undetectable_redundancy;
          Alcotest.test_case "coverage grows" `Quick
            test_faults_coverage_grows_with_vectors;
          Alcotest.test_case "rejects sequential" `Quick test_faults_reject_sequential;
        ] );
      ( "differential",
        List.map
          (fun (e : Multipliers.Catalog.entry) ->
            Alcotest.test_case e.label `Quick (differential_arch e.label))
          Multipliers.Catalog.entries
        @ [
            Alcotest.test_case "glitch ratio RCA" `Quick
              test_glitch_ratio_differential_sequential;
            Alcotest.test_case "glitch ratio Sequential" `Quick
              test_glitch_ratio_differential_multitick;
          ] );
      ( "bitpar",
        [
          Alcotest.test_case "matches event sim" `Quick
            test_bitpar_matches_event_sim;
          Alcotest.test_case "adjacent necessary" `Quick
            test_bitpar_adjacent_necessary;
          Alcotest.test_case "batched activity" `Quick
            test_activity_batched_matches_reference;
          Alcotest.test_case "fault coverage" `Quick
            test_bitpar_fault_coverage_matches_scalar;
        ] );
    ]
