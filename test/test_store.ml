(* The warm-store suite: crash recovery, lock contention, corruption
   fallback and fingerprint invalidation for [Store]; exact-codec
   round-trips for [Power_core.Warm]; and the bitwise warm-vs-cold
   differentials over the explorer and the stored solver paths.

   Also runnable alone: dune build @store

   The fork-based tests (crash replay, lock contention) run first, before
   anything creates a [Parallel.Pool] domain — forking a multi-domain
   runtime is undefined territory, forking a single-domain one is not. *)

module B = Multipliers.Booth
module E = Power_core.Explorer
module N = Power_core.Numerical_opt
module Pl = Power_core.Power_law
module P = Power_core.Paper_data
module W = Power_core.Warm

(* ------------------------------ helpers ------------------------------ *)

let seq = ref 0

let fresh_dir () =
  incr seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "optstore-test.%d.%d" (Unix.getpid ()) !seq)

let rec remove_tree path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let open_rw ?(fp = "test-fp") dir =
  match Store.open_ ~path:dir ~fingerprint:fp () with
  | Ok t -> t
  | Error e -> Alcotest.failf "open %s: %s" dir e

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let append_file path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

(* ---------------------------- crash safety ---------------------------- *)

(* A writer that dies without [close] — every [put] flushes its log
   record, so the next opener must replay the full history, reclaim the
   dead PID's lock, and truncate whatever torn tail the crash left. *)
let test_crash_replay () =
  with_dir (fun dir ->
      (match Unix.fork () with
      | 0 ->
          (try
             let t = open_rw dir in
             for i = 1 to 5 do
               Store.put t ~ns:"crash"
                 (Printf.sprintf "k%d" i)
                 (Printf.sprintf "v%d" i)
             done
           with _ -> ());
          (* No close, no flush: simulates SIGKILL after the last put. *)
          Unix._exit 0
      | pid -> ignore (Unix.waitpid [] pid));
      (* A torn append on top of the intact records... *)
      append_file (Filename.concat dir "log.bin") "R\x02\x00GARBAGE-TORN-TAIL";
      (* ...and a temp snapshot from a flush that never reached rename. *)
      write_file (Filename.concat dir "index.tmp") "partial snapshot junk";
      let t = open_rw dir in
      Alcotest.(check bool) "dead writer's lock reclaimed" true
        (Store.mode t = Store.Read_write);
      Alcotest.(check int) "all five puts replayed" 5 (Store.entries t);
      for i = 1 to 5 do
        Alcotest.(check (option string))
          (Printf.sprintf "k%d survives the crash" i)
          (Some (Printf.sprintf "v%d" i))
          (Store.find t ~ns:"crash" (Printf.sprintf "k%d" i))
      done;
      Alcotest.(check bool) "torn tail counted as recovered" true
        ((Store.stats t).Store.recovered > 0);
      Alcotest.(check bool) "killed-flush temp snapshot removed" false
        (Sys.file_exists (Filename.concat dir "index.tmp"));
      Store.put t ~ns:"crash" "k6" "v6";
      Store.close t;
      let t2 = open_rw dir in
      Alcotest.(check int) "clean reopen after recovery" 6 (Store.entries t2);
      Store.close t2)

(* Two live processes: the second opener must degrade to a read-only
   view (puts dropped), and regain the lock once the owner exits. *)
let test_lock_contention () =
  with_dir (fun dir ->
      let r_ready, w_ready = Unix.pipe () in
      let r_go, w_go = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          Unix.close r_ready;
          Unix.close w_go;
          (try
             let t = open_rw dir in
             Store.put t ~ns:"lk" "owner" "child";
             ignore (Unix.write_substring w_ready "r" 0 1);
             ignore (Unix.read r_go (Bytes.create 1) 0 1);
             Store.close t
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close w_ready;
          Unix.close r_go;
          ignore (Unix.read r_ready (Bytes.create 1) 0 1);
          let t = open_rw dir in
          Alcotest.(check bool) "second opener degrades to read-only" true
            (Store.mode t = Store.Read_only);
          Alcotest.(check (option string)) "sees the owner's flushed put"
            (Some "child")
            (Store.find t ~ns:"lk" "owner");
          Store.put t ~ns:"lk" "dropped" "x";
          Alcotest.(check (option string)) "read-only put dropped" None
            (Store.find t ~ns:"lk" "dropped");
          Store.close t;
          ignore (Unix.write_substring w_go "g" 0 1);
          ignore (Unix.waitpid [] pid);
          Unix.close r_ready;
          Unix.close w_go;
          let t2 = open_rw dir in
          Alcotest.(check bool) "lock regained after the owner exits" true
            (Store.mode t2 = Store.Read_write);
          Alcotest.(check (option string)) "owner's data intact" (Some "child")
            (Store.find t2 ~ns:"lk" "owner");
          Store.close t2)

let populate dir n =
  let t = open_rw dir in
  for i = 0 to n - 1 do
    Store.put t ~ns:"c"
      (Printf.sprintf "k%d" i)
      (Printf.sprintf "value-%d" i)
  done;
  Store.close t

(* Corruption never crashes an open: a flipped byte costs at most the
   records from the damage onward, full garbage costs the snapshot and
   falls back to cold — the store stays usable either way. *)
let test_corruption_recovery () =
  with_dir (fun dir ->
      populate dir 10;
      let index = Filename.concat dir "index.bin" in
      let s = read_file index in
      let b = Bytes.of_string s in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
      write_file index (Bytes.to_string b);
      let t = open_rw dir in
      Alcotest.(check int) "checksum flip loses exactly the last record" 9
        (Store.entries t);
      Alcotest.(check bool) "flip counted as recovered" true
        ((Store.stats t).Store.recovered > 0);
      Store.put t ~ns:"c" "fresh" "after-recovery";
      Store.close t;
      let t2 = open_rw dir in
      Alcotest.(check (option string)) "usable after recovery"
        (Some "after-recovery")
        (Store.find t2 ~ns:"c" "fresh");
      Store.close t2);
  with_dir (fun dir ->
      populate dir 4;
      write_file (Filename.concat dir "index.bin") "total garbage, no header";
      let t = open_rw dir in
      Alcotest.(check int) "garbage snapshot falls back to cold" 0
        (Store.entries t);
      Alcotest.(check bool) "garbage counted as recovered" true
        ((Store.stats t).Store.recovered > 0);
      Store.put t ~ns:"c" "k" "v";
      Alcotest.(check (option string)) "still usable" (Some "v")
        (Store.find t ~ns:"c" "k");
      Store.close t)

let test_fingerprint_invalidation () =
  with_dir (fun dir ->
      let a = open_rw ~fp:"model-A" dir in
      Store.put a ~ns:"n" "k1" "v1";
      Store.put a ~ns:"n" "k2" "v2";
      Store.close a;
      let a2 = open_rw ~fp:"model-A" dir in
      Alcotest.(check int) "same fingerprint keeps entries" 2
        (Store.entries a2);
      Alcotest.(check bool) "not invalidated" false
        (Store.stats a2).Store.invalidated;
      Store.close a2;
      let b = open_rw ~fp:"model-B" dir in
      Alcotest.(check int) "new fingerprint discards everything" 0
        (Store.entries b);
      Alcotest.(check bool) "invalidation reported" true
        (Store.stats b).Store.invalidated;
      Store.put b ~ns:"n" "k1" "fresh";
      Store.close b;
      let b2 = open_rw ~fp:"model-B" dir in
      Alcotest.(check (option string)) "rebuilt under the new model"
        (Some "fresh")
        (Store.find b2 ~ns:"n" "k1");
      Store.close b2)

(* ------------------------------ round-trip ----------------------------- *)

let test_roundtrip_basic () =
  with_dir (fun dir ->
      let t = open_rw dir in
      Alcotest.(check (option string)) "empty store misses" None
        (Store.find t ~ns:"a" "k");
      Store.put t ~ns:"a" "k" "v1";
      Store.put t ~ns:"b" "k" "other-namespace";
      Alcotest.(check (option string)) "namespaces are disjoint" (Some "v1")
        (Store.find t ~ns:"a" "k");
      Store.put t ~ns:"a" "k" "v2";
      Alcotest.(check (option string)) "replace wins" (Some "v2")
        (Store.find t ~ns:"a" "k");
      Alcotest.(check int) "entries" 2 (Store.entries t);
      let seen = ref [] in
      Store.iter t ~ns:"a" (fun k v -> seen := (k, v) :: !seen);
      Alcotest.(check (list (pair string string))) "iter one namespace"
        [ ("k", "v2") ] !seen;
      Store.close t;
      let t2 = open_rw dir in
      Alcotest.(check (option string)) "persisted across close" (Some "v2")
        (Store.find t2 ~ns:"a" "k");
      Alcotest.(check (option string)) "both namespaces persisted"
        (Some "other-namespace")
        (Store.find t2 ~ns:"b" "k");
      Store.close t2)

let test_gc_and_clear () =
  with_dir (fun dir ->
      let t = open_rw dir in
      Store.put t ~ns:"g" "k" "a";
      Store.put t ~ns:"g" "k" "b";
      Store.put t ~ns:"g" "k" "c";
      Alcotest.(check int) "gc retires the superseded versions" 2 (Store.gc t);
      Alcotest.(check int) "second gc has nothing to retire" 0 (Store.gc t);
      Alcotest.(check (option string)) "latest version survives" (Some "c")
        (Store.find t ~ns:"g" "k");
      Store.clear t;
      Alcotest.(check int) "clear drops everything" 0 (Store.entries t);
      Store.close t;
      let t2 = open_rw dir in
      Alcotest.(check int) "clear persisted" 0 (Store.entries t2);
      Store.close t2)

let test_readonly_open () =
  with_dir (fun dir ->
      populate dir 3;
      let t =
        match Store.open_ ~readonly:true ~path:dir ~fingerprint:"test-fp" () with
        | Ok t -> t
        | Error e -> Alcotest.failf "readonly open: %s" e
      in
      Alcotest.(check bool) "readonly mode" true
        (Store.mode t = Store.Read_only);
      Alcotest.(check bool) "readonly takes no lock" false
        (Sys.file_exists (Filename.concat dir "LOCK"));
      Alcotest.(check int) "readonly sees the data" 3 (Store.entries t);
      Store.put t ~ns:"c" "k99" "x";
      Alcotest.(check (option string)) "readonly put dropped" None
        (Store.find t ~ns:"c" "k99");
      Store.close t)

let test_stats_and_counters () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      with_dir (fun dir ->
          let t = open_rw dir in
          ignore (Store.find t ~ns:"s" "missing");
          Store.put t ~ns:"s" "k" "v";
          ignore (Store.find t ~ns:"s" "k");
          Store.put t ~ns:"s" "k" "v";
          (* identical: skipped *)
          let st = Store.stats t in
          Alcotest.(check int) "one hit" 1 st.Store.hits;
          Alcotest.(check int) "one miss" 1 st.Store.misses;
          Alcotest.(check int) "one value-changing put" 1 st.Store.puts;
          Store.close t;
          List.iter
            (fun c ->
              Alcotest.(check bool)
                (Printf.sprintf "counter %s ticked" c)
                true
                (Obs.counter_value c > 0))
            [ "store.hit"; "store.miss"; "store.put"; "store.put_skip" ]))

(* Arbitrary-byte payloads (namespaces kept short: the frame gives them a
   uint16 length) survive put/find and a close/reopen cycle, last write
   wins. *)
let prop_roundtrip =
  let triple =
    QCheck.triple
      (QCheck.string_gen_of_size (QCheck.Gen.int_bound 8) QCheck.Gen.char)
      (QCheck.string_gen QCheck.Gen.char)
      (QCheck.string_gen QCheck.Gen.char)
  in
  QCheck.Test.make ~name:"arbitrary-byte records survive close/reopen"
    ~count:15
    (QCheck.list_of_size (QCheck.Gen.int_bound 20) triple)
    (fun records ->
      with_dir (fun dir ->
          let t = open_rw dir in
          List.iter (fun (ns, k, v) -> Store.put t ~ns k v) records;
          let expected = Hashtbl.create 16 in
          List.iter
            (fun (ns, k, v) -> Hashtbl.replace expected (ns, k) v)
            records;
          let check t =
            Hashtbl.fold
              (fun (ns, k) v ok -> ok && Store.find t ~ns k = Some v)
              expected true
          in
          let live = check t in
          Store.close t;
          let t2 = open_rw dir in
          let reopened = check t2 && Store.entries t2 = Hashtbl.length expected in
          Store.close t2;
          live && reopened))

(* ------------------------------- codecs -------------------------------- *)

let bits_of l = List.map Int64.bits_of_float l

let test_float_codec_exact () =
  let specials =
    [
      0.0;
      -0.0;
      1.0 /. 3.0;
      -1.6180339887498949;
      Float.min_float;
      4.9e-324 (* denormal floor *);
      Float.max_float;
      infinity;
      neg_infinity;
      1e-30;
    ]
  in
  (match W.decode_floats (W.encode_floats specials) with
  | None -> Alcotest.fail "special floats failed to decode"
  | Some l ->
      Alcotest.(check (list int64)) "bitwise float round-trip"
        (bits_of specials) (bits_of l));
  Alcotest.(check (option (list int64))) "garbage rejected" None
    (Option.map bits_of (W.decode_floats "0x1p+0 not-a-float"))

let test_point_and_opt_codec () =
  let row = List.hd P.table1 in
  let problem =
    Power_core.Calibration.problem_of_row Device.Technology.ll ~f:P.frequency
      row
  in
  let p = N.optimum problem in
  let pbits (b : Pl.breakdown) =
    bits_of [ b.Pl.vdd; b.Pl.vth; b.Pl.dynamic; b.Pl.static; b.Pl.total ]
  in
  (match W.decode_point (W.encode_point p) with
  | None -> Alcotest.fail "point failed to decode"
  | Some q ->
      Alcotest.(check (list int64)) "point round-trip bitwise" (pbits p)
        (pbits q));
  (match W.decode_opt (W.encode_opt (Some (p, p.Pl.total *. 0.5))) with
  | Some (Some (q, lo)) ->
      Alcotest.(check (list int64)) "stored outcome point bitwise" (pbits p)
        (pbits q);
      Alcotest.(check int64) "certified bound bitwise"
        (Int64.bits_of_float (p.Pl.total *. 0.5))
        (Int64.bits_of_float lo)
  | _ -> Alcotest.fail "feasible outcome failed to decode");
  (match W.decode_opt (W.encode_opt None) with
  | Some None -> ()
  | _ -> Alcotest.fail "infeasible marker failed to round-trip");
  Alcotest.(check bool) "undecodable outcome rejected" true
    (W.decode_opt "F 1.0 bogus" = None);
  (* Distinct problems must have distinct exact keys; the design prefix
     depends only on the technology and architecture fields, so scaling
     the throughput of a fixed design leaves it unchanged. *)
  let near = { problem with Pl.f = problem.Pl.f *. (1.0 +. 1e-12) } in
  Alcotest.(check bool) "problem key is exact in f" true
    (W.problem_key problem <> W.problem_key near);
  Alcotest.(check string) "design key ignores f" (W.design_key problem)
    (W.design_key near)

let test_model_fingerprint () =
  let fp = W.fingerprint () in
  Alcotest.(check string) "fingerprint is deterministic" fp (W.fingerprint ());
  Alcotest.(check bool) "fingerprint is a hex digest" true
    (String.length fp = 16
    && String.for_all
         (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
         fp);
  (match Sys.getenv_opt "OPTPOWER_STORE" with
  | Some _ -> ()
  | None ->
      Alcotest.(check string) "default store path" ".optpower-store"
        (W.default_path ()));
  Unix.putenv "OPTPOWER_STORE" "/tmp/elsewhere";
  Alcotest.(check string) "OPTPOWER_STORE overrides" "/tmp/elsewhere"
    (W.default_path ());
  Unix.putenv "OPTPOWER_STORE" "";
  Alcotest.(check string) "empty override falls back" ".optpower-store"
    (W.default_path ())

(* ------------------------- warm-path differentials --------------------- *)

let wc_axes =
  {
    E.bits = 4;
    families = [ E.Booth; E.Dadda; E.Wallace ];
    radices = [ 4 ];
    signednesses = [ B.Unsigned ];
    stages = [ 1; 2 ];
    copies = [ 1; 2 ];
    fmults = [ 0.5; 1.0 ];
    techs = [ Device.Technology.ll; Device.Technology.hs ];
  }

(* Full-precision fingerprint of a result's fronts: string equality is
   equality of the underlying float64 bits. *)
let front_fp (r : E.result) =
  String.concat "\n"
    (List.concat_map
       (fun (s : E.slice) ->
         Printf.sprintf "f=%h" s.f
         :: List.map
              (fun (e : E.entry) ->
                Printf.sprintf "%s %h %h %h %h %h" e.design e.power e.vdd
                  e.cert_lo e.latency e.area)
              s.front)
       r.slices)

let test_warm_vs_cold_fronts_any_pool () =
  with_dir (fun dir ->
      let storeless = front_fp (E.explore ~prune:true wc_axes) in
      let open_store () =
        match W.open_store ~path:dir () with
        | Some s -> s
        | None -> Alcotest.fail "warm store failed to open"
      in
      let st = open_store () in
      let cold = E.explore ~prune:true ~store:st wc_axes in
      Store.close st;
      Alcotest.(check string) "cold run matches the storeless bits" storeless
        (front_fp cold);
      Alcotest.(check int) "first run replays nothing" 0
        cold.E.totals.E.store_hits;
      Alcotest.(check bool) "first run solves something" true
        (cold.E.totals.E.exact_solves > 0);
      List.iter
        (fun jobs ->
          let st = open_store () in
          let pool = Parallel.Pool.create ~jobs () in
          let warm = E.explore ~pool ~prune:true ~store:st wc_axes in
          Parallel.Pool.shutdown pool;
          Store.close st;
          Alcotest.(check string)
            (Printf.sprintf "warm front bitwise-identical at -j %d" jobs)
            storeless (front_fp warm);
          Alcotest.(check int)
            (Printf.sprintf "warm run re-solves nothing at -j %d" jobs)
            0 warm.E.totals.E.exact_solves;
          Alcotest.(check bool)
            (Printf.sprintf "warm run replays from the store at -j %d" jobs)
            true
            (warm.E.totals.E.store_hits > 0);
          Alcotest.(check int)
            (Printf.sprintf "warm funnel still partitions at -j %d" jobs)
            warm.E.totals.E.enumerated
            (warm.E.totals.E.filtered + warm.E.totals.E.bound_pruned
            + warm.E.totals.E.cert_pruned + warm.E.totals.E.store_hits
            + warm.E.totals.E.exact_solves))
        [ 1; 4; 8 ])

let rel a b = Float.abs (a -. b) /. Float.max 1e-30 (Float.abs b)

let test_solver_store_paths () =
  with_dir (fun dir ->
      let st =
        match W.open_store ~path:dir () with
        | Some s -> s
        | None -> Alcotest.fail "warm store failed to open"
      in
      Fun.protect
        ~finally:(fun () -> Store.close st)
        (fun () ->
          let row = List.hd P.table1 in
          let problem =
            Power_core.Calibration.problem_of_row Device.Technology.ll
              ~f:P.frequency row
          in
          let bits (p : Pl.breakdown) =
            Printf.sprintf "%h %h %h %h %h" p.Pl.vdd p.Pl.vth p.Pl.dynamic
              p.Pl.static p.Pl.total
          in
          let cold = N.optimum problem in
          let first = N.optimum_stored ~store:st problem in
          Alcotest.(check string) "store miss = cold solve bits" (bits cold)
            (bits first);
          Alcotest.(check string) "store hit replays the same bits" (bits cold)
            (bits (N.optimum_stored ~store:st problem));
          (match N.warm_hint ~store:st problem with
          | Some h ->
              Alcotest.(check string) "exact-key hint is the stored point"
                (bits cold) (bits h)
          | None -> Alcotest.fail "exact-key hint missing");
          (* The same design pushed 7% in throughput (a fixed design at a
             scaled f, the explorer's sweep shape — [problem_of_row] would
             recalibrate the capacitances and change the design identity):
             the hint comes from the nearest stored solve of the design,
             and the hinted result must agree with the grid oracle to
             1e-6 relative. *)
          let near = { problem with Pl.f = problem.Pl.f *. 1.07 } in
          let hint = N.warm_hint ~store:st near in
          Alcotest.(check bool) "nearest-frequency hint found" true
            (hint <> None);
          let hinted = N.optimum_hinted ~hint near in
          let oracle = N.optimum_grid near in
          Alcotest.(check bool)
            (Printf.sprintf "hinted vdd matches grid oracle (rel %.3g)"
               (rel hinted.Pl.vdd oracle.Pl.vdd))
            true
            (rel hinted.Pl.vdd oracle.Pl.vdd < 1e-6);
          Alcotest.(check bool)
            (Printf.sprintf "hinted Ptot matches grid oracle (rel %.3g)"
               (rel hinted.Pl.total oracle.Pl.total))
            true
            (rel hinted.Pl.total oracle.Pl.total < 1e-6);
          (* The near problem then lands in the store bitwise-safely. *)
          Alcotest.(check string) "near-miss path = its own cold bits"
            (bits (N.optimum near))
            (bits (N.optimum_stored ~store:st near))))

let () =
  Alcotest.run "store"
    [
      ( "crash-safety",
        [
          Alcotest.test_case "killed writer: replay, stale lock, torn tail"
            `Quick test_crash_replay;
          Alcotest.test_case "two-process lock contention" `Quick
            test_lock_contention;
          Alcotest.test_case "corrupted files degrade to cold" `Quick
            test_corruption_recovery;
          Alcotest.test_case "fingerprint change invalidates" `Quick
            test_fingerprint_invalidation;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "put/find/iter/persist" `Quick
            test_roundtrip_basic;
          Alcotest.test_case "gc and clear" `Quick test_gc_and_clear;
          Alcotest.test_case "readonly open" `Quick test_readonly_open;
          Alcotest.test_case "stats and store.* counters" `Quick
            test_stats_and_counters;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "hex-float round-trip incl. specials" `Quick
            test_float_codec_exact;
          Alcotest.test_case "point/outcome codecs and exact keys" `Quick
            test_point_and_opt_codec;
          Alcotest.test_case "model fingerprint and default path" `Quick
            test_model_fingerprint;
        ] );
      ( "warm-paths",
        [
          Alcotest.test_case "warm = cold fronts bitwise at -j 1/4/8" `Quick
            test_warm_vs_cold_fronts_any_pool;
          Alcotest.test_case "stored/hinted solver paths" `Quick
            test_solver_store_paths;
        ] );
    ]
