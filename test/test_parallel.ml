(* The parallel subsystem: Pool map semantics, Memo correctness, and the
   determinism contract of the parallelised paper artifacts — every output
   must be bitwise-identical at pool sizes 1 and 4. *)

module Pool = Parallel.Pool
module Memo = Parallel.Memo

(* Pool semantics *)

let test_pool_map_ordering () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let input = List.init 101 (fun i -> i) in
      Alcotest.(check (list int))
        "map = List.map" (List.map succ input)
        (Pool.map ~pool succ input);
      Alcotest.(check (list int)) "empty" [] (Pool.map ~pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~pool succ [ 7 ]))

let test_pool_map_qcheck =
  QCheck.Test.make ~name:"pool map agrees with List.map"
    ~count:50
    QCheck.(list small_int)
    (fun xs ->
      let pool = Pool.create ~jobs:3 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let f x = (x * 31) lxor 5 in
          Pool.map ~pool f xs = List.map f xs))

let test_pool_mapi () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = [ "a"; "b"; "c"; "d"; "e" ] in
      Alcotest.(check (list string))
        "mapi = List.mapi"
        (List.mapi (fun i s -> Printf.sprintf "%d%s" i s) xs)
        (Pool.mapi ~pool (fun i s -> Printf.sprintf "%d%s" i s) xs))

let test_pool_map_reduce () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 57 (fun i -> i) in
      (* Non-commutative reduce: order sensitivity would show instantly. *)
      let strings =
        Pool.map_reduce ~pool ~map:string_of_int
          ~reduce:(fun acc s -> acc ^ "," ^ s)
          ~init:"" xs
      in
      Alcotest.(check string)
        "reduce in list order"
        (List.fold_left (fun acc s -> acc ^ "," ^ s) "" (List.map string_of_int xs))
        strings)

let test_pool_exception_first_index () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (* Every item from 40 on raises; the caller must always observe the
         failure of the lowest index whatever the scheduling. *)
      let f i = if i >= 40 then failwith (Printf.sprintf "boom %d" i) else i in
      (match Pool.map ~pool f (List.init 100 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg -> Alcotest.(check string) "first failure" "boom 40" msg);
      (* The pool survives a failed job. *)
      Alcotest.(check (list int))
        "pool usable after failure" [ 1; 2; 3 ]
        (Pool.map ~pool succ [ 0; 1; 2 ]))

let test_pool_sequential_fallback () =
  let pool = Pool.create ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size 1" 1 (Pool.size pool);
      let ran_on = ref [] in
      let r =
        Pool.map ~pool
          (fun i ->
            ran_on := Domain.self () :: !ran_on;
            i * 2)
          [ 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "results" [ 2; 4; 6 ] r;
      Alcotest.(check bool)
        "all on the caller domain" true
        (List.for_all (fun d -> d = Domain.self ()) !ran_on))

let test_pool_bad_sizes () =
  let bad f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "jobs 0" true (bad (fun () -> Pool.create ~jobs:0 ()));
  Alcotest.(check bool)
    "set_default_jobs 0" true
    (bad (fun () -> Pool.set_default_jobs 0))

(* Memo *)

let test_memo_hit () =
  let calls = Atomic.make 0 in
  let memo =
    Memo.create (fun k ->
        Atomic.incr calls;
        ref (k * 10))
  in
  let a = Memo.find memo 3 in
  let b = Memo.find memo 3 in
  Alcotest.(check int) "computed once" 1 (Atomic.get calls);
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check int) "value" 30 !a;
  ignore (Memo.find memo 4);
  Alcotest.(check int) "second key computes" 2 (Atomic.get calls);
  let s = Memo.stats memo in
  Alcotest.(check int) "entries" 2 s.entries;
  Alcotest.(check int) "misses" 2 s.misses;
  Alcotest.(check int) "hits" 1 s.hits;
  Memo.clear memo;
  Alcotest.(check int) "cleared" 0 (Memo.stats memo).entries

let test_memo_concurrent () =
  let memo = Memo.create (fun k -> ref (k + 1)) in
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (* Hammer one key from four domains: all callers must end up with the
         one cached (physically identical) value. *)
      let results = Pool.map ~pool (fun _ -> Memo.find memo 7) (List.init 64 Fun.id) in
      let witness = Memo.find memo 7 in
      Alcotest.(check bool)
        "all physically equal" true
        (List.for_all (fun r -> r == witness) results);
      Alcotest.(check int) "one entry" 1 (Memo.stats memo).entries)

let test_memo_no_exception_caching () =
  let calls = Atomic.make 0 in
  let memo =
    Memo.create (fun k ->
        Atomic.incr calls;
        if k < 0 then invalid_arg "negative";
        k)
  in
  let raises () =
    match Memo.find memo (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "raises" true (raises ());
  Alcotest.(check bool) "raises again" true (raises ());
  Alcotest.(check int) "recomputed each time" 2 (Atomic.get calls);
  Alcotest.(check int) "nothing cached" 0 (Memo.stats memo).entries

(* Determinism of the parallelised paper artifacts: pool size 1 vs 4. *)

let with_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let test_table1_pool_invariant () =
  let seq = with_jobs 1 Report.Experiments.table1 in
  let par = with_jobs 4 Report.Experiments.table1 in
  Alcotest.(check int) "same length" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Report.Experiments.table1_row) (b : Report.Experiments.table1_row) ->
      Alcotest.(check string) "label" a.label b.label;
      List.iter2
        (fun x y ->
          Alcotest.(check bool)
            (Printf.sprintf "%s bitwise" a.label)
            true
            (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)))
        [ a.vdd; a.vth; a.pdyn; a.pstat; a.ptot; a.eq13; a.err_pct ]
        [ b.vdd; b.vth; b.pdyn; b.pstat; b.ptot; b.eq13; b.err_pct ])
    seq par

let test_monte_carlo_pool_invariant () =
  let problem =
    Power_core.Calibration.problem_of_row Device.Technology.ll
      ~f:Power_core.Paper_data.frequency
      (Power_core.Paper_data.table1_find "Wallace")
  in
  let run jobs =
    with_jobs jobs (fun () ->
        let rng = Numerics.Rng.create 2006 in
        Power_core.Variation.monte_carlo ~samples:40 ~rng problem)
  in
  let seq = run 1 and par = run 4 in
  let bits = Int64.bits_of_float in
  Alcotest.(check bool)
    "mean bitwise" true
    (Int64.equal (bits seq.ptot_stats.mean) (bits par.ptot_stats.mean));
  Alcotest.(check bool)
    "p95 bitwise" true
    (Int64.equal (bits seq.ptot_p95) (bits par.ptot_p95));
  List.iter2
    (fun (a : Power_core.Variation.sample) (b : Power_core.Variation.sample) ->
      Alcotest.(check bool)
        "sample optimum bitwise" true
        (Int64.equal (bits a.optimum.total) (bits b.optimum.total));
      Alcotest.(check bool)
        "sample draw bitwise" true
        (Int64.equal (bits a.leak_factor) (bits b.leak_factor)))
    seq.samples par.samples

let test_measure_activity_many_pool_invariant () =
  let specs =
    List.map Multipliers.Catalog.build [ "RCA"; "Wallace"; "Sequential" ]
  in
  let seq =
    with_jobs 1 (fun () ->
        Multipliers.Harness.measure_activity_many ~cycles:20 specs)
  in
  let par =
    with_jobs 4 (fun () ->
        Multipliers.Harness.measure_activity_many ~cycles:20 specs)
  in
  let direct =
    List.map (Multipliers.Harness.measure_activity ~cycles:20) specs
  in
  List.iter2
    (fun (a : Multipliers.Harness.measured) (b : Multipliers.Harness.measured) ->
      Alcotest.(check bool)
        "activity bitwise" true
        (Int64.equal
           (Int64.bits_of_float a.activity)
           (Int64.bits_of_float b.activity));
      Alcotest.(check bool)
        "glitch bitwise" true
        (Int64.equal
           (Int64.bits_of_float a.glitch_ratio)
           (Int64.bits_of_float b.glitch_ratio)))
    seq par;
  List.iter2
    (fun (a : Multipliers.Harness.measured) (b : Multipliers.Harness.measured) ->
      Alcotest.(check (float 0.0)) "matches sequential API" a.activity b.activity)
    par direct

let test_sweep_pool_invariant () =
  let problem =
    Power_core.Calibration.problem_of_row Device.Technology.ll
      ~f:Power_core.Paper_data.frequency
      (Power_core.Paper_data.table1_find "RCA")
  in
  let run jobs =
    with_jobs jobs (fun () ->
        Power_core.Numerical_opt.sweep_vdd ~samples:64 ~vdd_lo:0.25 ~vdd_hi:1.2
          problem)
  in
  List.iter2
    (fun (a : Power_core.Numerical_opt.point) (b : Power_core.Numerical_opt.point) ->
      Alcotest.(check bool)
        "sweep point bitwise" true
        (Int64.equal (Int64.bits_of_float a.total) (Int64.bits_of_float b.total)))
    (run 1) (run 4)

let test_catalog_build_shared () =
  let a = Multipliers.Catalog.build "RCA" in
  let b = Multipliers.Catalog.build "RCA" in
  Alcotest.(check bool) "same physical spec" true (a == b);
  let entry = Multipliers.Catalog.find "RCA" in
  Alcotest.(check bool) "entry.build shares the cache" true (entry.build () == a);
  Alcotest.(check bool)
    "unknown label" true
    (match Multipliers.Catalog.build "no such arch" with
    | _ -> false
    | exception Not_found -> true);
  Alcotest.(check bool)
    "non-catalog width" true
    (match Multipliers.Catalog.build ~bits:8 "RCA" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
          qcheck test_pool_map_qcheck;
          Alcotest.test_case "mapi" `Quick test_pool_mapi;
          Alcotest.test_case "map_reduce order" `Quick test_pool_map_reduce;
          Alcotest.test_case "first failure wins" `Quick
            test_pool_exception_first_index;
          Alcotest.test_case "sequential fallback" `Quick
            test_pool_sequential_fallback;
          Alcotest.test_case "bad sizes" `Quick test_pool_bad_sizes;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hit correctness" `Quick test_memo_hit;
          Alcotest.test_case "concurrent same key" `Quick test_memo_concurrent;
          Alcotest.test_case "exceptions not cached" `Quick
            test_memo_no_exception_caching;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table1 jobs 1 = jobs 4" `Slow
            test_table1_pool_invariant;
          Alcotest.test_case "monte carlo jobs 1 = jobs 4" `Slow
            test_monte_carlo_pool_invariant;
          Alcotest.test_case "activity many jobs 1 = jobs 4" `Slow
            test_measure_activity_many_pool_invariant;
          Alcotest.test_case "sweep jobs 1 = jobs 4" `Quick
            test_sweep_pool_invariant;
          Alcotest.test_case "catalog build shared" `Quick
            test_catalog_build_shared;
        ] );
    ]
