(* The serve layer: deterministic client-load harness over socketpairs,
   wire-protocol robustness (seeded round-trips plus adversarial frames),
   backpressure/batching/drain semantics, and the session-owned cache.

   The central claim under test: a reply produced by the batched resident
   session is bitwise-identical to the one-shot [Serve.Engine.run_call]
   for the same validated call, whatever the pool size, the number of
   concurrent clients or the batch composition. [Serve.Json.equal]
   compares numbers by their float64 bits, so "equal" below means
   bit-for-bit. *)

module Json = Serve.Json
module Protocol = Serve.Protocol
module Engine = Serve.Engine
module Session = Serve.Session
module Server = Serve.Server
module Client = Serve.Client

let labels =
  List.map
    (fun (r : Power_core.Paper_data.table1_row) -> r.label)
    Power_core.Paper_data.table1

let frame_of ~id meth params =
  Json.Obj
    [
      ("id", Json.Num (float_of_int id));
      ("method", Json.Str meth);
      ("params", Json.Obj params);
    ]

let call_of meth params =
  match Protocol.parse_frame (Json.to_string (frame_of ~id:0 meth params)) with
  | Ok (r : Protocol.request) -> r.call
  | Error (_, _, msg) -> Alcotest.failf "bad scripted call %s: %s" meth msg

let with_session ?autostart config f =
  let session = Session.create ?autostart ~config () in
  Fun.protect ~finally:(fun () -> Session.shutdown session) (fun () ->
      f session)

(* One wired client: a socketpair with a real [Server.handle_connection]
   thread on the far end, so requests traverse the full framing path. *)
let with_wire session f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let handler =
    Thread.create (fun () -> Server.handle_connection session a) ()
  in
  let client = Client.of_fd b in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Thread.join handler)
    (fun () -> f client)

let rec wait_for ?(tries = 500) msg pred =
  if pred () then ()
  else if tries = 0 then Alcotest.failf "timed out waiting for %s" msg
  else begin
    Thread.delay 0.01;
    wait_for ~tries:(tries - 1) msg pred
  end

(* The client script: all five request kinds, including a defaulted and an
   explicit-parameter variant and a >1-chunk rank (17 archs vs the chunk
   size of 16). *)
let script =
  [
    ("optimum", [ ("arch", Json.Str "RCA") ]);
    ("optimum", [ ("arch", Json.Str "Wallace"); ("tech", Json.Str "HS") ]);
    ("sweep", [ ("arch", Json.Str "RCA"); ("samples", Json.Num 7.0) ]);
    ( "rank",
      [
        ( "archs",
          Json.Arr
            (List.map
               (fun l -> Json.Str l)
               (labels @ [ "RCA"; "Wallace"; "Sequential"; "RCA" ])) );
      ] );
    ("rank", []);
    ("lint", [ ("only", Json.Arr [ Json.Str "model.finite" ]) ]);
    ("certify", [ ("tech", Json.Str "LL") ]);
  ]

let check_json msg expected actual =
  if not (Json.equal expected actual) then
    Alcotest.failf "%s: reply differs from one-shot\nwant %s\ngot  %s" msg
      (Json.to_string expected) (Json.to_string actual)

(* Client-load equivalence: N scripted clients against a session at the
   given pool size; every reply must be bitwise-equal to the one-shot
   engine result computed outside any session. *)
let test_wire_equivalence jobs () =
  let refs = List.map (fun (m, p) -> Engine.run_call (call_of m p)) script in
  let config =
    { Session.default_config with jobs = Some jobs; cache = false }
  in
  with_session config @@ fun session ->
  let nclients = 4 in
  let results = Array.make nclients [] in
  let run_client i () =
    with_wire session (fun c ->
        results.(i) <-
          List.map
            (fun (m, p) ->
              match Client.rpc c ~meth:m p with
              | Ok payload -> payload
              | Error (code, msg) ->
                Alcotest.failf "client %d %s: %s: %s" i m code msg)
            script)
  in
  let threads =
    List.init nclients (fun i -> Thread.create (run_client i) ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i replies ->
      List.iteri
        (fun k (expected, actual) ->
          check_json
            (Printf.sprintf "client %d call %d (-j %d)" i k jobs)
            expected actual)
        (List.combine refs replies))
    results

(* Per-client FIFO: pipeline many frames before reading any reply; the
   reply ids must come back in submission order. *)
let test_fifo_pipelined () =
  let config =
    { Session.default_config with jobs = Some 2; cache = false }
  in
  with_session config @@ fun session ->
  with_wire session @@ fun c ->
  let n = 10 in
  List.iteri
    (fun i label ->
      Client.send_line c
        (Json.to_string
           (frame_of ~id:i "optimum" [ ("arch", Json.Str label) ])))
    (List.filteri (fun i _ -> i < n) (labels @ labels));
  for i = 0 to n - 1 do
    match Client.recv_line c with
    | None -> Alcotest.failf "EOF before reply %d" i
    | Some line -> (
      match Json.parse line with
      | Error msg -> Alcotest.failf "reply %d unparseable: %s" i msg
      | Ok reply ->
        (match Json.member "id" reply with
        | Some (Json.Num id) ->
          Alcotest.(check int) "FIFO reply order" i (int_of_float id)
        | _ -> Alcotest.failf "reply %d has no numeric id" i);
        if Json.member "ok" reply = None then
          Alcotest.failf "reply %d is not ok: %s" i line)
  done

(* Cross-request batching: hold the dispatcher, enqueue several distinct
   requests, release — they run as one coalesced batch, and each reply is
   still bitwise-equal to its one-shot result. *)
let test_batch_coalescing () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let calls =
    [
      call_of "optimum" [ ("arch", Json.Str "RCA") ];
      call_of "optimum" [ ("arch", Json.Str "Wallace") ];
      call_of "rank" [] ;
      call_of "sweep" [ ("arch", Json.Str "Sequential"); ("samples", Json.Num 5.0) ];
    ]
  in
  let refs = List.map (fun c -> Engine.run_call c) calls in
  Obs.reset ();
  let config =
    {
      Session.jobs = Some 2;
      queue_capacity = 16;
      max_batch = 8;
      cache = false;
      store = None;
    }
  in
  with_session ~autostart:false config @@ fun session ->
  let calls_arr = Array.of_list calls in
  let results = Array.make (Array.length calls_arr) None in
  let threads =
    Array.to_list
      (Array.mapi
         (fun i call ->
           Thread.create
             (fun () -> results.(i) <- Some (Session.submit session call))
             ())
         calls_arr)
  in
  wait_for "all requests queued" (fun () ->
      Session.pending session = Array.length calls_arr);
  Session.start session;
  List.iter Thread.join threads;
  List.iteri
    (fun i expected ->
      match results.(i) with
      | None -> Alcotest.failf "request %d never answered" i
      | Some actual ->
        check_json (Printf.sprintf "batched request %d" i) expected actual)
    refs;
  Alcotest.(check int)
    "one coalesced batch" 1
    (Obs.counter_value "serve.batches");
  Alcotest.(check int)
    "all requests rode the batch" (Array.length calls_arr)
    (Obs.counter_value "serve.batched")

(* Backpressure soak: more submitters than queue slots block rather than
   drop; a clean drain leaves no queued request, no leaked pool task, and
   requests == replies. *)
let test_backpressure_and_drain () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let config =
    { Session.jobs = Some 2; queue_capacity = 2; max_batch = 2; cache = false;
      store = None }
  in
  let session = Session.create ~autostart:false ~config () in
  let n = 6 in
  let results = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            let call =
              call_of "optimum" [ ("arch", Json.Str (List.nth labels i)) ]
            in
            results.(i) <- Some (Session.submit session call))
          ())
  in
  wait_for "queue at capacity" (fun () -> Session.pending session = 2);
  (* Give the surplus submitters every chance to (wrongly) squeeze in. *)
  Thread.delay 0.05;
  Alcotest.(check int)
    "queue holds exactly its capacity" 2 (Session.pending session);
  Alcotest.(check int)
    "only queued requests counted accepted" 2
    (Obs.counter_value "serve.requests");
  Session.start session;
  List.iter Thread.join threads;
  Array.iteri
    (fun i r -> if r = None then Alcotest.failf "request %d dropped" i)
    results;
  Session.shutdown session;
  Alcotest.(check int) "queue drained" 0 (Session.pending session);
  Alcotest.(check int)
    "no leaked pool tasks" 0
    (Parallel.Pool.pending (Session.pool session));
  Alcotest.(check int)
    "every accepted request answered"
    (Obs.counter_value "serve.requests")
    (Obs.counter_value "serve.replies");
  Alcotest.(check int) "all six served" 6 (Obs.counter_value "serve.replies");
  (* Draining is terminal: new work is refused with the typed error. *)
  Alcotest.check_raises "submit after shutdown" Session.Shutting_down
    (fun () ->
      ignore (Session.submit session (call_of "optimum" [ ("arch", Json.Str "RCA") ])))

(* Regression: the session-owned result cache survives across requests — a
   second identical call is a memo hit and re-runs no solver work, even
   when the two frames differ in explicit-vs-defaulted parameters. *)
let test_session_cache_across_requests () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let config = { Session.default_config with jobs = Some 2 } in
  with_session config @@ fun session ->
  let call = call_of "optimum" [ ("arch", Json.Str "RCA") ] in
  let r1 = Session.submit session call in
  let solves = Obs.counter_value "opt.solves" in
  let hits = Obs.counter_value "memo.serve.results.hit" in
  let r2 = Session.submit session call in
  check_json "cached reply" r1 r2;
  Alcotest.(check int)
    "second identical request is a memo hit" (hits + 1)
    (Obs.counter_value "memo.serve.results.hit");
  Alcotest.(check int)
    "zero additional solves" solves
    (Obs.counter_value "opt.solves");
  (* Defaults are baked into the validated call: an explicit tech=LL frame
     is the same cache key as the defaulted one. *)
  let explicit =
    call_of "optimum" [ ("arch", Json.Str "RCA"); ("tech", Json.Str "LL") ]
  in
  let r3 = Session.submit session explicit in
  check_json "defaulted = explicit cache key" r1 r3;
  Alcotest.(check int)
    "explicit-parameter frame also hits" (hits + 2)
    (Obs.counter_value "memo.serve.results.hit");
  Alcotest.(check int)
    "still zero additional solves" solves
    (Obs.counter_value "opt.solves");
  let stats = Session.cache_stats session in
  Alcotest.(check int) "one cached entry" 1 stats.entries

(* Explore parameter plumbing: families and constraint caps parse into
   the validated call; bad values are invalid-params before any work. *)
let test_explore_params () =
  (match call_of "explore" [ ("families", Json.Str "dadda") ] with
  | Protocol.Explore e ->
    Alcotest.(check bool) "single family string" true
      (e.families = [ Power_core.Explorer.Dadda ]);
    Alcotest.(check bool) "caps default to none" true
      (e.max_latency = None && e.max_area = None)
  | _ -> Alcotest.fail "not an explore call");
  (match
     call_of "explore"
       [
         ("families", Json.Arr [ Json.Str "booth"; Json.Str "wallace" ]);
         ("max_latency", Json.Num 12.5);
         ("max_area", Json.Num 4000.0);
       ]
   with
  | Protocol.Explore e ->
    Alcotest.(check bool) "family list" true
      (e.families = [ Power_core.Explorer.Booth; Power_core.Explorer.Wallace ]);
    Alcotest.(check bool) "caps carried" true
      (e.max_latency = Some 12.5 && e.max_area = Some 4000.0)
  | _ -> Alcotest.fail "not an explore call");
  let invalid params =
    let line = Json.to_string (frame_of ~id:0 "explore" params) in
    match Protocol.parse_frame line with
    | Error (_, Protocol.Params, _) -> true
    | Ok _ | Error _ -> false
  in
  Alcotest.(check bool) "unknown family" true
    (invalid [ ("families", Json.Str "csa") ]);
  Alcotest.(check bool) "empty family list" true
    (invalid [ ("families", Json.Arr []) ]);
  Alcotest.(check bool) "negative latency cap" true
    (invalid [ ("max_latency", Json.Num (-1.0)) ]);
  Alcotest.(check bool) "zero area cap" true
    (invalid [ ("max_area", Json.Num 0.0) ]);
  (* NaN is unrepresentable in JSON: whether the reader rejects the
     literal or the cap guard rejects the value, the frame must error. *)
  Alcotest.(check bool) "NaN latency cap" true
    (match
       Protocol.parse_frame
         {|{"id":0,"method":"explore","params":{"max_latency":nan}}|}
     with
    | Error _ -> true
    | Ok _ -> false)

(* The store_stats method: [{"enabled": false}] on a cold session; live
   (never memoised) counters on a store-backed one. *)
let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let test_store_stats () =
  with_session { Session.default_config with jobs = Some 1 } (fun session ->
      let reply = Session.submit session (call_of "store_stats" []) in
      match Json.member "enabled" reply with
      | Some (Json.Bool false) -> ()
      | _ ->
        Alcotest.failf "cold session: expected enabled:false, got %s"
          (Json.to_string reply));
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "optpower-test-serve-store.%d" (Unix.getpid ()))
  in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let store = Power_core.Warm.open_store ~path:dir () in
  if store = None then Alcotest.fail "cannot open the test store";
  (* The session owns (and closes) the store handle. *)
  with_session { Session.default_config with jobs = Some 1; store }
  @@ fun session ->
  let stats () = Session.submit session (call_of "store_stats" []) in
  let num field reply =
    match Json.member field reply with
    | Some (Json.Num v) -> int_of_float v
    | _ ->
      Alcotest.failf "store_stats reply lacks %S: %s" field
        (Json.to_string reply)
  in
  let before = stats () in
  (match Json.member "enabled" before with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "store-backed session must report enabled:true");
  let solved =
    Session.submit session (call_of "optimum" [ ("arch", Json.Str "RCA") ])
  in
  let after = stats () in
  Alcotest.(check bool) "the solve wrote through to the store" true
    (num "puts" after > num "puts" before);
  (* Live counters: the session memo is on, so if store_stats were
     cached the second reply would be a frozen copy of the first. *)
  Alcotest.(check bool) "stats are never memoised" true
    (num "entries" after >= num "entries" before
    && not (Json.equal before after));
  (* A warm replay through the same store (one-shot path, no session
     memo involved) answers bitwise-identically to the cold solve. *)
  Option.iter
    (fun st ->
      check_json "warm replay = cold solve" solved
        (Engine.run_call ~store:st
           (call_of "optimum" [ ("arch", Json.Str "RCA") ])))
    store

(* Wire JSON round-trips: 200 seeded random documents must survive
   print -> parse with every float64 bit intact. *)
let gen_json st =
  let gen_string () =
    let n = Random.State.int st 12 in
    String.init n (fun _ ->
        match Random.State.int st 6 with
        | 0 -> Char.chr (Random.State.int st 32) (* control chars *)
        | 1 -> '"'
        | 2 -> '\\'
        | 3 -> Char.chr (128 + Random.State.int st 128) (* high bytes *)
        | _ -> Char.chr (32 + Random.State.int st 95))
  in
  let gen_float () =
    match Random.State.int st 4 with
    | 0 -> float_of_int (Random.State.int st 1_000_000 - 500_000)
    | 1 -> Random.State.float st 2.0 -. 1.0
    | 2 -> ldexp (Random.State.float st 2.0 -. 1.0) (Random.State.int st 600 - 300)
    | _ -> Float.of_int (Random.State.int st 1000) /. 7.0
  in
  let rec gen depth =
    let cases = if depth >= 3 then 4 else 6 in
    match Random.State.int st cases with
    | 0 -> Json.Null
    | 1 -> Json.Bool (Random.State.bool st)
    | 2 -> Json.Num (gen_float ())
    | 3 -> Json.Str (gen_string ())
    | 4 ->
      Json.Arr (List.init (Random.State.int st 5) (fun _ -> gen (depth + 1)))
    | _ ->
      Json.Obj
        (List.init (Random.State.int st 5) (fun _ ->
             (gen_string (), gen (depth + 1))))
  in
  gen 0

let test_json_roundtrip () =
  let st = Random.State.make [| 0xC0FFEE |] in
  for i = 1 to 200 do
    let doc = gen_json st in
    let s = Json.to_string doc in
    match Json.parse s with
    | Error msg -> Alcotest.failf "case %d: %S does not re-parse: %s" i s msg
    | Ok doc' ->
      if not (Json.equal doc doc') then
        Alcotest.failf "case %d: round-trip changed %S" i s
  done

(* The parser is total: random garbage returns Ok or Error, never raises
   and never hangs. *)
let test_json_fuzz_total () =
  let st = Random.State.make [| 0xBADF00D |] in
  for i = 1 to 200 do
    let n = Random.State.int st 64 in
    let s =
      String.init n (fun _ ->
          (* Bias toward structural bytes so nesting actually happens. *)
          match Random.State.int st 4 with
          | 0 -> [| '{'; '}'; '['; ']'; '"'; ','; ':' |].(Random.State.int st 7)
          | 1 -> [| 'n'; 't'; 'f'; 'e'; '-'; '+'; '.' |].(Random.State.int st 7)
          | 2 -> Char.chr (Random.State.int st 256)
          | _ -> [| '0'; '1'; '9'; ' '; '\\' |].(Random.State.int st 5))
    in
    match Json.parse s with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "case %d: parse %S raised %s" i s (Printexc.to_string e)
  done

(* Adversarial frames over the real wire: each must produce one structured
   error reply, after which the same connection still serves a valid
   request — never a crash, never a wedge. *)
let adversary_config = { Session.default_config with jobs = Some 1 }

let expect_error ~what c line expected_code =
  Client.send_line c line;
  match Client.recv_line c with
  | None -> Alcotest.failf "%s: connection died instead of replying" what
  | Some reply -> (
    match Json.parse reply with
    | Error msg -> Alcotest.failf "%s: unparseable reply %S: %s" what reply msg
    | Ok json -> (
      match Json.member "error" json with
      | Some err ->
        (match Json.member "code" err with
        | Some (Json.Str code) ->
          Alcotest.(check string) (what ^ ": error code") expected_code code
        | _ -> Alcotest.failf "%s: error without code" what);
        json
      | None -> Alcotest.failf "%s: expected error reply, got %S" what reply))

let expect_alive c =
  match Client.rpc c ~meth:"optimum" [ ("arch", Json.Str "RCA") ] with
  | Ok _ -> ()
  | Error (code, msg) ->
    Alcotest.failf "connection wedged after bad frame: %s: %s" code msg

let test_adversarial_frames () =
  with_session adversary_config @@ fun session ->
  with_wire session @@ fun c ->
  (* Not JSON at all. *)
  ignore (expect_error ~what:"garbage" c "hello there" "parse-error");
  expect_alive c;
  (* A frame that is valid JSON but not a request object. *)
  ignore (expect_error ~what:"non-object" c "[1,2,3]" "parse-error");
  (* NaN is not in the JSON grammar. *)
  ignore
    (expect_error ~what:"NaN payload" c
       {|{"id":1,"method":"sweep","params":{"arch":"RCA","vdd_lo":NaN}}|}
       "parse-error");
  (* An overflow literal parses to infinity and must be rejected by the
     finiteness validation, with the id recovered for correlation. *)
  let reply =
    expect_error ~what:"overflow literal" c
      {|{"id":77,"method":"sweep","params":{"arch":"RCA","vdd_lo":1e999}}|}
      "invalid-params"
  in
  (match Json.member "id" reply with
  | Some (Json.Num id) ->
    Alcotest.(check int) "recovered id" 77 (int_of_float id)
  | _ -> Alcotest.fail "invalid-params reply lost the request id");
  expect_alive c;
  (* Unknown method. *)
  ignore
    (expect_error ~what:"unknown method" c
       {|{"id":2,"method":"frobnicate","params":{}}|}
       "unknown-method");
  (* Unknown architecture and rule ids are invalid-params. *)
  ignore
    (expect_error ~what:"unknown arch" c
       {|{"id":3,"method":"optimum","params":{"arch":"CLA"}}|}
       "invalid-params");
  (* Stack-smashing nesting depth. *)
  ignore
    (expect_error ~what:"deep nesting" c
       (String.make 1000 '[')
       "parse-error");
  (* Oversized frame: discarded to its newline, answered, stream intact. *)
  ignore
    (expect_error ~what:"oversized frame" c
       (String.make (Protocol.max_frame_bytes + 1000) 'x')
       "frame-error");
  expect_alive c;
  (* Empty lines are skipped, not answered: the next reply must belong to
     the valid request pipelined right behind one. *)
  Client.send_line c "";
  Client.send_line c
    (Json.to_string (frame_of ~id:123 "optimum" [ ("arch", Json.Str "RCA") ]));
  (match Client.recv_line c with
  | Some line -> (
    match Json.parse line with
    | Ok reply -> (
      match Json.member "id" reply with
      | Some (Json.Num id) ->
        Alcotest.(check int) "empty line skipped" 123 (int_of_float id)
      | _ -> Alcotest.fail "reply without id")
    | Error msg -> Alcotest.failf "unparseable reply: %s" msg)
  | None -> Alcotest.fail "EOF after empty line")

(* EOF in the middle of a frame: one structured frame-error, then close. *)
let test_truncated_frame () =
  with_session adversary_config @@ fun session ->
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let handler =
    Thread.create (fun () -> Server.handle_connection session a) ()
  in
  let partial = {|{"id":9,"method":"optimum","params":{"arch|} in
  ignore (Unix.write_substring b partial 0 (String.length partial));
  Unix.shutdown b Unix.SHUTDOWN_SEND;
  let c = Client.of_fd b in
  (match Client.recv_line c with
  | None -> Alcotest.fail "no reply for truncated frame"
  | Some line -> (
    match Json.parse line with
    | Ok reply -> (
      match Json.member "error" reply with
      | Some err ->
        (match Json.member "code" err with
        | Some (Json.Str code) ->
          Alcotest.(check string) "truncated frame code" "frame-error" code
        | _ -> Alcotest.fail "error without code")
      | None -> Alcotest.failf "expected error, got %S" line)
    | Error msg -> Alcotest.failf "unparseable reply: %s" msg));
  Alcotest.(check bool) "connection closed after EOF" true
    (Client.recv_line c = None);
  Thread.join handler;
  Client.close c

let () =
  Alcotest.run "serve"
    [
      ( "equivalence",
        [
          Alcotest.test_case "scripted clients, -j 1" `Slow
            (test_wire_equivalence 1);
          Alcotest.test_case "scripted clients, -j 4" `Slow
            (test_wire_equivalence 4);
          Alcotest.test_case "pipelined FIFO replies" `Quick
            test_fifo_pipelined;
          Alcotest.test_case "cross-request batch coalescing" `Quick
            test_batch_coalescing;
        ] );
      ( "session",
        [
          Alcotest.test_case "backpressure blocks, drain is clean" `Quick
            test_backpressure_and_drain;
          Alcotest.test_case "result cache survives across requests" `Quick
            test_session_cache_across_requests;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "explore families and caps" `Quick
            test_explore_params;
          Alcotest.test_case "store_stats method" `Quick test_store_stats;
          Alcotest.test_case "200 seeded JSON round-trips" `Quick
            test_json_roundtrip;
          Alcotest.test_case "parser is total on fuzz input" `Quick
            test_json_fuzz_total;
          Alcotest.test_case "adversarial frames" `Quick
            test_adversarial_frames;
          Alcotest.test_case "EOF-truncated frame" `Quick
            test_truncated_frame;
        ] );
    ]
