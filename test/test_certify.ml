(* Soundness tests for the interval certifier: the certified enclosures
   must contain everything the concrete (scalar) semantics can produce.
   Random points are drawn from a fixed seed so a failure reproduces
   exactly; the oracle is the blind grid solver, deliberately independent
   of both the seeded production solver and the interval machinery. *)

module P = Power_core.Paper_data
module Pl = Power_core.Power_law
module N = Power_core.Numerical_opt
module Ab = Power_core.Absint
module Iv = Numerics.Interval

let flavors =
  [ Device.Technology.ull; Device.Technology.ll; Device.Technology.hs ]

let rel a b = Float.abs (a -. b) /. Float.max 1e-30 (Float.abs b)

let points_per_box = 200

(* Every (f, vdd) sample point of a parameter box must evaluate inside
   the box's certified Ptot range — for all 13 rows x 3 flavors, with a
   +/-5% frequency box and the full supply search range. *)
let test_range_soundness () =
  let rng = Numerics.Rng.create 20060702 in
  List.iter
    (fun tech ->
      List.iter
        (fun row ->
          let problem =
            Power_core.Calibration.problem_of_row tech ~f:P.frequency row
          in
          let f_box =
            Iv.make (problem.Pl.f *. 0.95) (problem.Pl.f *. 1.05)
          in
          let box = Ab.box ~f:f_box problem in
          let enc = Ab.ptot_over box in
          for _ = 1 to points_per_box do
            let f =
              f_box.Iv.lo
              +. Numerics.Rng.float rng (f_box.Iv.hi -. f_box.Iv.lo)
            in
            let vdd =
              box.Ab.vdd.Iv.lo
              +. Numerics.Rng.float rng
                   (box.Ab.vdd.Iv.hi -. box.Ab.vdd.Iv.lo)
            in
            let p = N.ptot_on_constraint (Pl.at_frequency problem ~f) vdd in
            if Float.is_finite p && not (Iv.contains enc p) then
              Alcotest.failf
                "%s/%s: Ptot(f=%.6g, vdd=%.6g) = %.12g outside %s"
                (Device.Technology.name tech)
                row.P.label f vdd p (Iv.to_string enc)
          done)
        P.table1)
    flavors

(* The certified minimiser bracket and minimum enclosure must contain the
   grid-oracle optimum for every paper row x flavor, and the enclosure
   endpoints must bound the oracle power to 1e-6 relative slack. *)
let test_bracket_contains_oracle () =
  List.iter
    (fun tech ->
      List.iter
        (fun row ->
          let problem =
            Power_core.Calibration.problem_of_row tech ~f:P.frequency row
          in
          let cert = Ab.certify (Ab.box problem) in
          let oracle = N.optimum_grid problem in
          let fail msg =
            Alcotest.failf "%s/%s: %s (bracket %s, ptot %s)"
              (Device.Technology.name tech)
              row.P.label msg
              (Iv.to_string cert.Ab.vdd_bracket)
              (Iv.to_string cert.Ab.ptot)
          in
          (* The oracle refines to ~1e-9 in vdd; allow it that slop at
             the bracket edges. *)
          let slack = 1e-6 *. Float.max 1.0 oracle.Pl.vdd in
          if
            oracle.Pl.vdd < cert.Ab.vdd_bracket.Iv.lo -. slack
            || oracle.Pl.vdd > cert.Ab.vdd_bracket.Iv.hi +. slack
          then
            fail
              (Printf.sprintf "oracle vdd %.9g outside bracket"
                 oracle.Pl.vdd);
          if oracle.Pl.total < cert.Ab.ptot.Iv.lo *. (1.0 -. 1e-6) then
            fail
              (Printf.sprintf "oracle ptot %.9g below certified lower bound"
                 oracle.Pl.total);
          if oracle.Pl.total > cert.Ab.ptot.Iv.hi *. (1.0 +. 1e-6) then
            fail
              (Printf.sprintf "oracle ptot %.9g above certified upper bound"
                 oracle.Pl.total);
          (* The enclosure should also be useful, not just sound: the
             incumbent is a real point evaluation, so the upper end must
             be within a few percent of the oracle minimum. *)
          if rel cert.Ab.ptot.Iv.hi oracle.Pl.total > 0.05 then
            fail
              (Printf.sprintf "upper bound %.9g is loose vs oracle %.9g"
                 cert.Ab.ptot.Iv.hi oracle.Pl.total))
        P.table1)
    flavors

(* Dse.prune over a 1k-candidate slicing of the supply axis: at least
   half the boxes must go, and the box holding the grid-oracle optimum
   must always survive. *)
let test_dse_prune () =
  let problem =
    Power_core.Calibration.problem_of_row Device.Technology.ll
      ~f:P.frequency (P.table1_find "RCA")
  in
  let oracle = N.optimum_grid problem in
  let lo, hi = Pl.vdd_search_range in
  let n = 1000 in
  let step = (hi -. lo) /. float_of_int n in
  let candidates =
    List.init n (fun i ->
        let a = lo +. (float_of_int i *. step) in
        {
          Power_core.Dse.label = Printf.sprintf "slice-%03d" i;
          box = Ab.box ~vdd:(Iv.make a (a +. step)) problem;
        })
  in
  let result = Power_core.Dse.prune candidates in
  let holds_optimum (c : Power_core.Dse.candidate) =
    Iv.contains c.box.Ab.vdd oracle.Pl.vdd
  in
  if List.exists holds_optimum result.Power_core.Dse.pruned then
    Alcotest.fail "pruned a candidate containing the oracle optimum";
  if not (List.exists holds_optimum result.Power_core.Dse.kept) then
    Alcotest.fail "no kept candidate contains the oracle optimum";
  let pruned = List.length result.Power_core.Dse.pruned in
  if pruned * 2 < n then
    Alcotest.failf "pruned only %d/%d candidates (need >= 50%%)" pruned n;
  Alcotest.(check int)
    "partition covers input" n
    (pruned + List.length result.Power_core.Dse.kept)

(* The closed-form interval lift must enclose the scalar closed form
   across a frequency box, whenever the scalar evaluation is feasible. *)
let test_eq13_enclosure () =
  let rng = Numerics.Rng.create 20060703 in
  List.iter
    (fun tech ->
      List.iter
        (fun row ->
          let problem =
            Power_core.Calibration.problem_of_row tech ~f:P.frequency row
          in
          let f_box =
            Iv.make (problem.Pl.f *. 0.9) (problem.Pl.f *. 1.1)
          in
          match Power_core.Closed_form.evaluate_iv problem ~f:f_box with
          | Error _ -> ()
          | Ok enc ->
            for _ = 1 to 50 do
              let f =
                f_box.Iv.lo
                +. Numerics.Rng.float rng (f_box.Iv.hi -. f_box.Iv.lo)
              in
              match
                Power_core.Closed_form.evaluate
                  (Pl.at_frequency problem ~f)
              with
              | exception Power_core.Closed_form.Infeasible _ -> ()
              | r ->
                let check what value iv =
                  if not (Iv.contains iv value) then
                    Alcotest.failf "%s/%s: %s %.12g outside %s at f=%.6g"
                      (Device.Technology.name tech)
                      row.P.label what value (Iv.to_string iv) f
                in
                check "vdd_opt" r.Power_core.Closed_form.vdd_opt
                  enc.Power_core.Closed_form.vdd_opt_iv;
                check "vth_opt" r.Power_core.Closed_form.vth_opt
                  enc.Power_core.Closed_form.vth_opt_iv;
                check "ptot" r.Power_core.Closed_form.ptot
                  enc.Power_core.Closed_form.ptot_iv
            done)
        P.table1)
    flavors

let () =
  Alcotest.run "certify"
    [
      ( "soundness",
        [
          Alcotest.test_case "random points inside certified Ptot range"
            `Slow test_range_soundness;
          Alcotest.test_case "certified bracket contains grid oracle" `Slow
            test_bracket_contains_oracle;
          Alcotest.test_case "Eq. 13 interval lift encloses scalar form"
            `Quick test_eq13_enclosure;
        ] );
      ( "dse",
        [
          Alcotest.test_case
            "prune discards >= 50% and never the optimum box" `Slow
            test_dse_prune;
        ] );
    ]
