(* Differential and property tests of the parameterized Booth generator
   and the pruned Pareto design-space explorer.

   Also runnable alone: dune build @explore *)

module B = Multipliers.Booth
module E = Power_core.Explorer
module C = Netlist.Circuit
module Bp = Logicsim.Bitpar

(* Exhaustive sweep of a bare generated core against the reference
   multiply, 63 operand pairs per Bitpar batch. *)
let exhaustive_core_sweep ~radix ~bits =
  let c = C.create (Printf.sprintf "gen_r%d_w%d" radix bits) in
  let a = Array.init bits (fun i -> C.add_input c (Printf.sprintf "a%d" i)) in
  let b = Array.init bits (fun i -> C.add_input c (Printf.sprintf "b%d" i)) in
  let p = B.gen_core ~radix c ~a ~b in
  Array.iteri (fun i net -> C.mark_output c net (Printf.sprintf "p%d" i)) p;
  let sim = Bp.create (Logicsim.Compiled.compile c) in
  let bit v i =
    if (v lsr i) land 1 = 1 then Netlist.Logic.One else Netlist.Logic.Zero
  in
  let fails = ref 0 in
  let check_batch pairs =
    List.iteri
      (fun lane (x, y) ->
        for i = 0 to bits - 1 do
          Bp.set_input sim ~net:a.(i) ~lane (bit x i);
          Bp.set_input sim ~net:b.(i) ~lane (bit y i)
        done)
      pairs;
    Bp.run sim;
    List.iteri
      (fun lane (x, y) ->
        let got = ref 0 in
        Array.iteri
          (fun i net ->
            if Bp.value sim ~net ~lane = Netlist.Logic.One then
              got := !got lor (1 lsl i))
          p;
        if !got <> x * y then incr fails)
      pairs
  in
  let batch = ref [] in
  let count = ref 0 in
  for x = 0 to (1 lsl bits) - 1 do
    for y = 0 to (1 lsl bits) - 1 do
      batch := (x, y) :: !batch;
      incr count;
      if !count = Bp.lanes then begin
        check_batch !batch;
        batch := [];
        count := 0
      end
    done
  done;
  if !batch <> [] then check_batch !batch;
  !fails

let test_cores_exhaustive () =
  List.iter
    (fun radix ->
      List.iter
        (fun bits ->
          Alcotest.(check int)
            (Printf.sprintf "radix-%d width-%d core" radix bits)
            0
            (exhaustive_core_sweep ~radix ~bits))
        [ 4; 6; 8 ])
    [ 2; 4; 8 ]

(* Signed variants: signed product semantics, so the unsigned
   [check_random] oracle does not apply — drive the two's-complement
   encodings through the harness directly. *)
let test_signed_exhaustive_4bit () =
  List.iter
    (fun radix ->
      let spec = B.generate ~signedness:B.Signed ~radix ~bits:4 () in
      let sim = Multipliers.Harness.fresh_simulator spec in
      for x = -8 to 7 do
        for y = -8 to 7 do
          let got =
            Multipliers.Harness.compute spec sim
              (Multipliers.Signed_mult.of_signed ~bits:4 x)
              (Multipliers.Signed_mult.of_signed ~bits:4 y)
          in
          Alcotest.(check int)
            (Printf.sprintf "r%d %d*%d" radix x y)
            (x * y)
            (Multipliers.Signed_mult.to_signed ~bits:8 got)
        done
      done)
    [ 2; 4; 8 ]

let test_pipelined_and_replicated () =
  List.iter
    (fun radix ->
      List.iter
        (fun (tag, spec) ->
          Alcotest.(check int)
            (Printf.sprintf "r%d %s" radix tag)
            0
            (List.length
               (Multipliers.Harness.check_random ~seed:11 spec ~samples:40)))
        [
          ("2-stage", B.generate ~stages:2 ~radix ~bits:8 ());
          ("3-stage", B.generate ~stages:3 ~radix ~bits:8 ());
          ("2-copy", B.generate ~copies:2 ~radix ~bits:8 ());
        ])
    [ 2; 4; 8 ]

let test_validate_rejects () =
  let rejected ?(signedness = B.Unsigned) ?(stages = 1) ?(copies = 1)
      ~radix ~bits () =
    match B.validate ~radix ~signedness ~stages ~copies ~bits with
    | Error _ -> true
    | Ok () -> false
  in
  Alcotest.(check bool) "radix 3" true (rejected ~radix:3 ~bits:8 ());
  Alcotest.(check bool) "odd width" true (rejected ~radix:4 ~bits:7 ());
  Alcotest.(check bool) "width 2" true (rejected ~radix:4 ~bits:2 ());
  Alcotest.(check bool) "stages 0" true (rejected ~radix:4 ~stages:0 ~bits:8 ());
  Alcotest.(check bool) "depth overshoot" true
    (rejected ~radix:8 ~stages:9 ~bits:8 ());
  Alcotest.(check bool) "copies 0" true (rejected ~radix:4 ~copies:0 ~bits:8 ());
  Alcotest.(check bool) "stages x copies" true
    (rejected ~radix:4 ~stages:2 ~copies:2 ~bits:8 ());
  Alcotest.(check bool) "valid combo accepted" false
    (rejected ~radix:8 ~stages:2 ~bits:8 ());
  Alcotest.(check bool) "generate raises on invalid" true
    (match B.generate ~radix:3 ~bits:8 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_estimated_cells () =
  let est copies =
    B.estimated_cells ~radix:8 ~signedness:B.Unsigned ~stages:1 ~copies
      ~bits:8
  in
  Alcotest.(check bool) "positive" true (est 1 > 0);
  Alcotest.(check bool) "monotone in copies" true (est 4 > est 2 && est 2 > est 1)

(* ------------------------- explorer properties ------------------------ *)

let mid_axes =
  {
    E.bits = 6;
    families = [ E.Booth ];
    radices = [ 2; 4; 8 ];
    signednesses = [ B.Unsigned ];
    stages = [ 1; 2 ];
    copies = [ 1; 2; 4 ];
    fmults = [ 0.5; 1.0; 2.0; 4.0 ];
    techs = Device.Technology.all;
  }

(* Full-precision fingerprint of a result's fronts: equality of the
   strings is equality of the underlying float64 bits. *)
let fingerprint (r : E.result) =
  String.concat "\n"
    (List.concat_map
       (fun (s : E.slice) ->
         Printf.sprintf "f=%h" s.f
         :: List.map
              (fun (e : E.entry) ->
                Printf.sprintf "%s %h %h %h %h %h" e.design e.power e.vdd
                  e.cert_lo e.latency e.area)
              s.front)
       r.slices)

let exhaustive_fp = lazy (fingerprint (E.explore ~prune:false mid_axes))

let test_pruned_matches_exhaustive_any_pool () =
  let reference = Lazy.force exhaustive_fp in
  List.iter
    (fun jobs ->
      let pool = Parallel.Pool.create ~jobs () in
      let pruned = E.explore ~pool ~prune:true mid_axes in
      Parallel.Pool.shutdown pool;
      Alcotest.(check string)
        (Printf.sprintf "front identical at -j %d" jobs)
        reference (fingerprint pruned))
    [ 1; 4; 8 ]

let test_prune_funnel () =
  let r = E.explore ~prune:true mid_axes in
  let t = r.totals in
  Alcotest.(check int) "enumerated = space size" (E.space_size mid_axes)
    t.enumerated;
  Alcotest.(check int) "funnel partitions the space" t.enumerated
    (t.filtered + t.bound_pruned + t.cert_pruned + t.store_hits
    + t.exact_solves);
  Alcotest.(check int) "no store, no store hits" 0 t.store_hits;
  Alcotest.(check int) "no caps, nothing filtered" 0 t.filtered;
  Alcotest.(check bool) "front nonempty" true (t.front_size > 0);
  Alcotest.(check bool)
    (Printf.sprintf "skips >= 50%% of exact solves (%d of %d solved)"
       t.exact_solves t.enumerated)
    true
    (2 * t.exact_solves <= t.enumerated);
  (* Round size is a scheduling knob only. *)
  Alcotest.(check string) "round size immaterial"
    (fingerprint r)
    (fingerprint (E.explore ~round:5 ~prune:true mid_axes))

let test_explore_rejects () =
  let raises axes =
    match E.explore axes with
    | (_ : E.result) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty fmults" true
    (raises { mid_axes with fmults = [] });
  Alcotest.(check bool) "negative fmult" true
    (raises { mid_axes with fmults = [ -1.0 ] });
  Alcotest.(check bool) "no valid substrate" true
    (raises { mid_axes with radices = [ 2 ]; stages = [ 50 ] });
  Alcotest.(check bool) "bad copies" true
    (raises { mid_axes with copies = [ 0 ] })

let test_chars_memo_hits () =
  Obs.set_enabled true;
  Obs.reset ();
  ignore (E.explore ~prune:true mid_axes);
  ignore (E.explore ~prune:true mid_axes);
  let hits = Obs.counter_value "memo.dse.chars.hit" in
  Obs.set_enabled false;
  Obs.reset ();
  Alcotest.(check bool)
    (Printf.sprintf "substrate characterization memoized (%d hits)" hits)
    true (hits > 0)

(* All three substrate families through the full pipeline on a small
   grid: Booth (radix-gated), Dadda (combinational only) and Wallace
   (pipelined beyond one stage). *)
let family_axes =
  {
    E.bits = 4;
    families = [ E.Booth; E.Dadda; E.Wallace ];
    radices = [ 4 ];
    signednesses = [ B.Unsigned ];
    stages = [ 1; 2 ];
    copies = [ 1 ];
    fmults = [ 1.0 ];
    techs = [ Device.Technology.ll ];
  }

let test_families_explore () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "family %s round-trips" (E.family_name f))
        true
        (E.family_of_string (E.family_name f) = Some f))
    [ E.Booth; E.Dadda; E.Wallace ];
  Alcotest.(check bool) "unknown family rejected" true
    (E.family_of_string "csa" = None);
  (* Booth p1/p2, Dadda (stage 1 only), Wallace basic + pipelined. *)
  Alcotest.(check int) "substrate combos" 5
    (List.length (E.substrate_combos family_axes));
  let r = E.explore ~prune:false family_axes in
  Alcotest.(check int) "space size" (E.space_size family_axes)
    r.totals.enumerated;
  (* Each family alone survives the full pipeline, and the combined front
     is at least as good as any single-family front (at 4 bits one family
     may Pareto-dominate the whole combined front, so membership of every
     family in it is not guaranteed). *)
  let best (res : E.result) =
    List.fold_left
      (fun m (s : E.slice) ->
        List.fold_left (fun m (e : E.entry) -> Float.min m e.power) m s.front)
      infinity res.slices
  in
  List.iter
    (fun fam ->
      let solo =
        E.explore ~prune:false { family_axes with E.families = [ fam ] }
      in
      Alcotest.(check bool)
        (E.family_name fam ^ " alone yields a front")
        true
        (solo.totals.front_size > 0);
      Alcotest.(check bool)
        (E.family_name fam ^ " never beats the combined front")
        true
        (best r <= best solo))
    [ E.Booth; E.Dadda; E.Wallace ];
  Alcotest.(check string) "pruned bitwise-identical across families"
    (fingerprint r)
    (fingerprint (E.explore ~prune:true family_axes))

let test_constraint_caps () =
  let entries (r : E.result) =
    List.concat_map (fun (s : E.slice) -> s.front) r.slices
  in
  let base = E.explore ~prune:true family_axes in
  let max_area =
    List.fold_left
      (fun m (e : E.entry) -> Float.max m e.area)
      0.0 (entries base)
  in
  let cap = max_area -. 0.5 in
  let capped = E.explore ~prune:true ~max_area:cap family_axes in
  Alcotest.(check bool) "cap filters candidates" true
    (capped.totals.filtered > 0);
  List.iter
    (fun (e : E.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within the area cap" e.label)
        true (e.area <= cap))
    (entries capped);
  Alcotest.(check int) "capped funnel still partitions the space"
    capped.totals.enumerated
    (capped.totals.filtered + capped.totals.bound_pruned
    + capped.totals.cert_pruned + capped.totals.store_hits
    + capped.totals.exact_solves);
  let raises axes_fn =
    match axes_fn () with
    | (_ : E.result) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative latency cap rejected" true
    (raises (fun () -> E.explore ~max_latency:(-1.0) family_axes));
  Alcotest.(check bool) "NaN area cap rejected" true
    (raises (fun () -> E.explore ~max_area:Float.nan family_axes));
  Alcotest.(check bool) "zero area cap rejected" true
    (raises (fun () -> E.explore ~max_area:0.0 family_axes))

(* Seeded property: on random sub-axes the pruned and exhaustive paths
   agree bitwise. bits = 4 keeps the substrate builds trivial. *)
let prop_pruned_equals_exhaustive =
  let subset ~min_len all st =
    let picked = List.filter (fun _ -> QCheck.Gen.bool st) all in
    if List.length picked >= min_len then picked
    else [ List.nth all (QCheck.Gen.int_bound (List.length all - 1) st) ]
  in
  let gen_axes st =
    let axes =
      {
        E.bits = 4;
        families = subset ~min_len:1 [ E.Booth; E.Dadda; E.Wallace ] st;
        radices = subset ~min_len:1 [ 2; 4; 8 ] st;
        signednesses = [ B.Unsigned ];
        stages = subset ~min_len:1 [ 1; 2 ] st;
        copies = subset ~min_len:1 [ 1; 2; 3 ] st;
        fmults = subset ~min_len:1 [ 0.5; 1.0; 3.0 ] st;
        techs = Device.Technology.all;
      }
    in
    (* A combinational-only family subset with stages = [2] induces no
       valid substrate; stage 1 makes any family subset explorable. *)
    if E.substrate_combos axes = [] then
      { axes with E.stages = 1 :: axes.stages }
    else axes
  in
  QCheck.Test.make ~name:"pruned = exhaustive on random sub-axes" ~count:6
    (QCheck.make gen_axes)
    (fun axes ->
      fingerprint (E.explore ~prune:true axes)
      = fingerprint (E.explore ~prune:false axes))

(* ------------------------------ lint rules ---------------------------- *)

let test_dse_rules_registered () =
  Alcotest.(check int) "dse rules" 2 (List.length Analysis.Rule.dse);
  List.iter
    (fun id ->
      let m = Analysis.Rule.find id in
      Alcotest.(check string) "id matches" id m.Analysis.Rule.id)
    [ "dse.generator-params"; "dse.front-nonempty" ]

let test_generator_params_rule () =
  let errors diags =
    List.length
      (List.filter
         (fun (d : Analysis.Diagnostic.t) ->
           d.severity = Analysis.Diagnostic.Error)
         diags)
  in
  Alcotest.(check int) "default axes clean" 0
    (errors (Analysis.Dse_rules.generator_params ~label:"t" E.default_axes));
  Alcotest.(check bool) "odd width flagged" true
    (errors
       (Analysis.Dse_rules.generator_params ~label:"t"
          { E.default_axes with bits = 7 })
    > 0);
  Alcotest.(check bool) "bad copies flagged" true
    (errors
       (Analysis.Dse_rules.generator_params ~label:"t"
          { E.default_axes with copies = [ 0 ] })
    > 0)

let test_front_nonempty_rule () =
  let axes =
    {
      E.bits = 4;
      families = [ E.Booth ];
      radices = [ 4 ];
      signednesses = [ B.Unsigned ];
      stages = [ 1 ];
      copies = [ 1; 2 ];
      fmults = [ 0.5; 1.0 ];
      techs = Device.Technology.all;
    }
  in
  Alcotest.(check int) "audit clean" 0
    (List.length (Analysis.Dse_rules.front_nonempty ~label:"t" axes))

let () =
  Alcotest.run "explore"
    [
      ( "generator",
        [
          Alcotest.test_case "exhaustive core sweeps r2/r4/r8 w4-8" `Quick
            test_cores_exhaustive;
          Alcotest.test_case "signed variants, exhaustive 4-bit" `Quick
            test_signed_exhaustive_4bit;
          Alcotest.test_case "pipelined and replicated variants" `Quick
            test_pipelined_and_replicated;
          Alcotest.test_case "parameter validation" `Quick test_validate_rejects;
          Alcotest.test_case "capacity estimate sanity" `Quick
            test_estimated_cells;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "pruned = exhaustive at -j 1/4/8" `Quick
            test_pruned_matches_exhaustive_any_pool;
          Alcotest.test_case "prune funnel accounting" `Quick test_prune_funnel;
          Alcotest.test_case "axes validation" `Quick test_explore_rejects;
          Alcotest.test_case "all three families explore" `Quick
            test_families_explore;
          Alcotest.test_case "latency/area constraint caps" `Quick
            test_constraint_caps;
          Alcotest.test_case "substrate memo hits" `Quick test_chars_memo_hits;
          QCheck_alcotest.to_alcotest prop_pruned_equals_exhaustive;
        ] );
      ( "rules",
        [
          Alcotest.test_case "dse rule registry" `Quick
            test_dse_rules_registered;
          Alcotest.test_case "dse.generator-params" `Quick
            test_generator_params_rule;
          Alcotest.test_case "dse.front-nonempty" `Quick
            test_front_nonempty_rule;
        ] );
    ]
