(* The observability layer: recording semantics (spans, counters,
   histograms, reset, exception safety), the disabled-is-a-no-op contract,
   and the determinism guarantees — normalized profiles and merged counters
   byte-identical at any pool size, and tracing never perturbing the
   bitwise-deterministic Monte Carlo streams. *)

module Pool = Parallel.Pool

(* Every test runs with a clean slate and leaves the subsystem disabled for
   whichever test (or other binary in the same run) comes next. *)
let with_recording f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())

let with_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S" what needle)
    true (contains haystack needle)

(* Recording semantics *)

let test_counters_merge_across_domains () =
  let c = Obs.Counter.make "test.obs.merged" in
  with_recording @@ fun () ->
  with_jobs 4 (fun () ->
      ignore (Pool.map (fun _ -> Obs.Counter.incr c) (List.init 97 Fun.id)));
  Alcotest.(check int)
    "97 increments survive the merge" 97
    (List.assoc "test.obs.merged" (Obs.counters ()))

let test_counter_add_and_zero_omitted () =
  let c = Obs.Counter.make "test.obs.add" in
  let z = Obs.Counter.make "test.obs.zero" in
  ignore z;
  with_recording @@ fun () ->
  Obs.Counter.add c 5;
  Obs.Counter.add c 7;
  let merged = Obs.counters () in
  Alcotest.(check int) "5+7" 12 (List.assoc "test.obs.add" merged);
  Alcotest.(check bool)
    "zero counters omitted" false
    (List.mem_assoc "test.obs.zero" merged)

let test_histogram_summary () =
  let h = Obs.Hist.make "test.obs.hist" in
  with_recording @@ fun () ->
  List.iter (Obs.Hist.observe h) [ 3.0; 1.0; 2.0 ];
  let s = List.assoc "test.obs.hist" (Obs.histograms ()) in
  Alcotest.(check int) "count" 3 s.Obs.h_count;
  Alcotest.(check (float 1e-12)) "sum" 6.0 s.Obs.h_sum;
  Alcotest.(check (float 1e-12)) "min" 1.0 s.Obs.h_min;
  Alcotest.(check (float 1e-12)) "max" 3.0 s.Obs.h_max

let test_span_nesting_in_profile () =
  with_recording @@ fun () ->
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_ ~name:"inner" (fun () -> ());
      Obs.Span.with_ ~name:"inner" (fun () -> ()));
  let profile = Obs.Report.profile ~normalize:true () in
  check_contains "profile" profile "\nouter";
  check_contains "profile" profile "\n  inner"

let test_span_ctx_reparents () =
  with_recording @@ fun () ->
  let ctx = Obs.Span.with_ ~name:"parent" (fun () -> Obs.Span.current ()) in
  (* A span recorded on a "bare" context but under the captured ctx must
     aggregate below the parent, exactly as the pool re-installs contexts
     on its worker domains. *)
  Obs.Span.with_ctx ctx (fun () -> Obs.Span.with_ ~name:"child" (fun () -> ()));
  let profile = Obs.Report.profile ~normalize:true () in
  check_contains "profile" profile "\n  child"

let test_span_recorded_on_exception () =
  with_recording @@ fun () ->
  (try Obs.Span.with_ ~name:"raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  (* The span must be recorded and the stack popped: a sibling span after
     the exception still lands at the root. *)
  Obs.Span.with_ ~name:"after" (fun () -> ());
  let profile = Obs.Report.profile ~normalize:true () in
  (* Both land at the root: at the start of a line, unindented. *)
  check_contains "profile" profile "\nraises";
  check_contains "profile" profile "\nafter"

let test_reset_drops_everything () =
  let c = Obs.Counter.make "test.obs.reset" in
  with_recording @@ fun () ->
  Obs.Counter.incr c;
  Obs.Span.with_ ~name:"gone" (fun () -> ());
  Obs.reset ();
  Alcotest.(check (list (pair string int))) "no counters" [] (Obs.counters ());
  Alcotest.(check bool)
    "no spans" false
    (contains (Obs.Report.profile ()) "gone")

let test_disabled_records_nothing () =
  let c = Obs.Counter.make "test.obs.disabled" in
  Obs.set_enabled false;
  Obs.reset ();
  Obs.Counter.incr c;
  Obs.Span.with_ ~name:"invisible" (fun () -> ());
  Alcotest.(check (list (pair string int)))
    "counters empty" [] (Obs.counters ());
  Alcotest.(check bool)
    "span not recorded" false
    (contains (Obs.Report.profile ()) "invisible")

let test_chrome_trace_shape () =
  with_recording @@ fun () ->
  Obs.Span.with_ ~name:"traced" ~attrs:[ ("k", "v\"quoted\"") ] (fun () -> ());
  let json = Obs.Report.chrome_trace () in
  List.iter
    (fun needle -> check_contains "trace" json needle)
    [ "\"traceEvents\""; "\"ph\":\"X\""; "\"traced\""; "\\\"quoted\\\"" ];
  (* Balanced brackets is a cheap well-formedness proxy without a JSON
     parser in the test deps. *)
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 in
  Alcotest.(check int) "balanced braces" (count '{' json) (count '}' json);
  Alcotest.(check int) "balanced brackets" (count '[' json) (count ']' json)

(* Determinism: the normalized profile and the merged counters are
   byte-identical whatever the pool size. *)

let capture_table1 jobs =
  with_recording @@ fun () ->
  with_jobs jobs (fun () -> ignore (Report.Experiments.table1 ()));
  (Obs.Report.profile ~normalize:true (), Obs.counters ~normalize:true ())

let test_normalized_profile_jobs_independent () =
  let profile1, counters1 = capture_table1 1 in
  let profile4, counters4 = capture_table1 4 in
  Alcotest.(check string) "profile byte-identical" profile1 profile4;
  Alcotest.(check (list (pair string int)))
    "counters identical" counters1 counters4

(* Determinism: tracing must never perturb results — the Monte Carlo
   per-sample streams stay bitwise-identical with recording on. *)

let test_tracing_does_not_perturb_mc () =
  let problem =
    Power_core.Calibration.problem_of_row Device.Technology.ll
      ~f:Power_core.Paper_data.frequency
      (Power_core.Paper_data.table1_find "Wallace")
  in
  let run ~traced jobs =
    let body () =
      with_jobs jobs (fun () ->
          let rng = Numerics.Rng.create 2006 in
          Power_core.Variation.monte_carlo ~samples:60 ~rng problem)
    in
    if traced then with_recording body else body ()
  in
  let bits (r : Power_core.Variation.result) =
    List.concat_map
      (fun (s : Power_core.Variation.sample) ->
        List.map Int64.bits_of_float
          [
            s.leak_factor; s.cap_factor; s.speed_factor; s.alpha;
            s.optimum.Power_core.Power_law.vdd;
            s.optimum.Power_core.Power_law.total;
          ])
      r.samples
  in
  let plain = bits (run ~traced:false 1) in
  Alcotest.(check (list int64))
    "traced sequential = plain" plain
    (bits (run ~traced:true 1));
  Alcotest.(check (list int64))
    "traced parallel = plain" plain
    (bits (run ~traced:true 4))

let () =
  Alcotest.run "obs"
    [
      ( "recording",
        [
          Alcotest.test_case "counters merge across domains" `Quick
            test_counters_merge_across_domains;
          Alcotest.test_case "counter add; zeros omitted" `Quick
            test_counter_add_and_zero_omitted;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
          Alcotest.test_case "span nesting" `Quick test_span_nesting_in_profile;
          Alcotest.test_case "ctx reparents across domains" `Quick
            test_span_ctx_reparents;
          Alcotest.test_case "span recorded on exception" `Quick
            test_span_recorded_on_exception;
          Alcotest.test_case "reset drops everything" `Quick
            test_reset_drops_everything;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "normalized profile independent of jobs" `Slow
            test_normalized_profile_jobs_independent;
          Alcotest.test_case "tracing does not perturb monte carlo" `Slow
            test_tracing_does_not_perturb_mc;
        ] );
    ]
