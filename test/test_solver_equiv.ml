(* Differential test of the Eq.13-seeded warm-start solver against the
   blind grid-scan oracle it replaced ([Numerical_opt.optimum_grid], the
   pre-seeding solver kept verbatim). Both refine to tol 1e-9, so wherever
   the objective is unimodal they must land on the same minimum to well
   under 1e-6 relative — in the supply AND in the power (the latter is
   flat at the optimum, so it agrees much tighter). Cases cover the
   calibrated Table 1 rows, the three technology flavors and three
   frequency decades from a fixed seed, so a failure reproduces exactly. *)

module P = Power_core.Paper_data
module Pl = Power_core.Power_law
module N = Power_core.Numerical_opt

let min_cases = 200
let max_draws = 20_000

let tech_of_int = function
  | 0 -> Device.Technology.ll
  | 1 -> Device.Technology.ull
  | _ -> Device.Technology.hs

let log_uniform rng lo hi =
  lo *. Float.exp (Numerics.Rng.float rng (Float.log (hi /. lo)))

let rel a b = Float.abs (a -. b) /. Float.max 1e-30 (Float.abs b)

(* A calibrated row under a random flavor and throughput: the production
   population the seeded solver actually faces. *)
let random_problem rng =
  let rows = Array.of_list P.table1 in
  let tech = tech_of_int (Numerics.Rng.int rng 3) in
  let row = rows.(Numerics.Rng.int rng (Array.length rows)) in
  let f = log_uniform rng 1e6 1e9 in
  Power_core.Calibration.problem_of_row tech ~f row

let check_close ~what ~tol problem expected actual =
  if rel actual expected > tol then
    Alcotest.failf "%s: seeded %.12g vs oracle %.12g (rel %.3g, tech %s, f=%.4g)"
      what actual expected (rel actual expected)
      (Device.Technology.name problem.Pl.tech)
      problem.Pl.f

let test_seeded_matches_grid () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let rng = Numerics.Rng.create 20060501 in
      let checked = ref 0 and drawn = ref 0 in
      while !checked < min_cases do
        incr drawn;
        if !drawn > max_draws then
          Alcotest.failf "only %d/%d comparable cases in %d draws" !checked
            min_cases max_draws;
        let problem = random_problem rng in
        let oracle = N.optimum_grid problem in
        (* On-boundary optima are clamps, not stationary points: the two
           refinement paths may stop on different sides of the wall. Skip
           them (the population keeps >200 interior cases). *)
        let lo, hi = Pl.vdd_search_range in
        if
          Float.is_finite oracle.Pl.total
          && oracle.Pl.vdd > lo +. 0.01
          && oracle.Pl.vdd < hi -. 0.01
        then begin
          incr checked;
          let seeded = N.optimum problem in
          check_close ~what:"vdd" ~tol:1e-6 problem oracle.Pl.vdd
            seeded.Pl.vdd;
          check_close ~what:"ptot" ~tol:1e-6 problem oracle.Pl.total
            seeded.Pl.total;
          (* A warm start from a deliberately bad neighbour (up to ±10%
             off) must still fall into the same basin. *)
          let off = 0.90 +. Numerics.Rng.float rng 0.2 in
          let from = Pl.at problem ~vdd:(seeded.Pl.vdd *. off) in
          let warm = N.optimum_warm ~from problem in
          check_close ~what:"warm vdd" ~tol:1e-6 problem oracle.Pl.vdd
            warm.Pl.vdd;
          check_close ~what:"warm ptot" ~tol:1e-6 problem oracle.Pl.total
            warm.Pl.total
        end
      done;
      (* The comparison is only meaningful if the seeded fast path was
         actually exercised (not just fallback-vs-oracle, which is the
         same code on both sides). *)
      let counters = Obs.counters () in
      let count name =
        Option.value ~default:0 (List.assoc_opt name counters)
      in
      if count "opt.seeded_solves" < min_cases / 2 then
        Alcotest.failf "seeded path taken only %d times in %d cases"
          (count "opt.seeded_solves") !checked)

let test_fallback_counts () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      (* Push the throughput up in octaves until chi*A exceeds 1: there
         Eq. 13 is infeasible, no seed exists, and [optimum] must fall
         back to the grid scan. *)
      let row = P.table1_find "RCA" in
      (* [problem_of_row] recalibrates chi' to the requested frequency, so
         its closed form is f-invariant; fixing the params and raising f
         through [Power_law.make] is what actually drives chi*A past 1. *)
      let params =
        Power_core.Calibration.params_of_row Device.Technology.ll
          ~f:P.frequency row
      in
      let problem_at f = Pl.make Device.Technology.ll params ~f in
      let rec first_infeasible f =
        if f > 1e13 then
          Alcotest.fail "no infeasible frequency below 10 THz"
        else
          match Power_core.Closed_form.evaluate (problem_at f) with
          | _ -> first_infeasible (2.0 *. f)
          | exception Power_core.Closed_form.Infeasible _ -> f
      in
      let problem = problem_at (first_infeasible 1e8) in
      ignore (N.optimum problem);
      let counters = Obs.counters () in
      let count name =
        Option.value ~default:0 (List.assoc_opt name counters)
      in
      Alcotest.(check int) "one fallback" 1 (count "opt.seed_fallbacks");
      Alcotest.(check int) "no seeded solve" 0 (count "opt.seeded_solves");
      if count "opt.grid_evals" <= 0 then
        Alcotest.fail "fallback did not run the grid scan";
      (* And a seedable problem leaves the fallback counter alone. *)
      ignore (N.optimum (problem_at P.frequency));
      let counters = Obs.counters () in
      Alcotest.(check int) "still one fallback" 1
        (Option.value ~default:0 (List.assoc_opt "opt.seed_fallbacks" counters)))

let () =
  Alcotest.run "solver_equiv"
    [
      ( "differential",
        [
          Alcotest.test_case "seeded optimum matches grid oracle (1e-6)" `Slow
            test_seeded_matches_grid;
          Alcotest.test_case "unseedable problems fall back to the grid"
            `Quick test_fallback_counts;
        ] );
    ]
