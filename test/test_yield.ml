(* The streaming yield engine and its numerics: sketch accuracy and merge
   associativity, Sobol determinism and discrepancy, QMC-vs-MC quantile
   error, pool-size-independent results, and the differential oracle
   against the list-based [monte_carlo]. *)

module P = Power_core.Paper_data
module V = Power_core.Variation
module Sk = Numerics.Sketch
module Rng = Numerics.Rng

let base_problem () =
  Power_core.Calibration.problem_of_row Device.Technology.ll ~f:P.frequency
    (P.table1_find "Wallace")

let check_bits name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.17g = %.17g" name a b)
    true
    (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

let rel a b = Float.abs (a -. b) /. Float.max 1e-300 (Float.abs b)

(* ---------------------------------------------------------------- *)
(* Sketches                                                          *)
(* ---------------------------------------------------------------- *)

(* The sketch's guarantee: each returned quantile is within relative
   error [alpha] of the exact order statistic it rounds to. 200 seeded
   cases across sizes, scales and signs. *)
let test_quantile_sketch_accuracy () =
  for case = 0 to 199 do
    let rng = Rng.create (1000 + case) in
    let n = 5 + Rng.int rng 396 in
    let scale = Float.exp (Rng.gaussian rng ~mu:0.0 ~sigma:3.0) in
    let sign = if case mod 3 = 0 then -1.0 else 1.0 in
    let data =
      Array.init n (fun _ ->
          sign *. scale *. Float.exp (Rng.gaussian rng ~mu:0.0 ~sigma:1.0))
    in
    let q = Sk.Quantile.create () in
    Array.iter (Sk.Quantile.add q) data;
    let sorted = Array.copy data in
    Array.sort compare sorted;
    List.iter
      (fun p ->
        let rank =
          int_of_float
            (Float.round (p /. 100.0 *. float_of_int (n - 1)))
        in
        let exact = sorted.(rank) in
        let est = Sk.Quantile.quantile q p in
        if
          Float.abs (est -. exact)
          > (Sk.Quantile.alpha q *. 1.02 *. Float.abs exact) +. 1e-12
        then
          Alcotest.failf
            "case %d n %d p %g: sketch %.9g vs exact %.9g (rel %.3e)" case n
            p est exact (rel est exact))
      [ 1.0; 25.0; 50.0; 75.0; 95.0; 99.0 ]
  done

let test_quantile_merge_associative () =
  let rng = Rng.create 42 in
  let data =
    Array.init 3000 (fun i ->
        let v = Float.exp (Rng.gaussian rng ~mu:0.0 ~sigma:2.0) in
        if i mod 7 = 0 then -.v else v)
  in
  let part lo hi =
    let q = Sk.Quantile.create () in
    for i = lo to hi - 1 do
      Sk.Quantile.add q data.(i)
    done;
    q
  in
  (* (A + B) + C versus A + (B + C) versus the single-stream sketch:
     integer bucket counts make the merge exactly associative, so all
     three answer bitwise-identically. *)
  let left = part 0 1000 in
  Sk.Quantile.merge_into left (part 1000 2000);
  Sk.Quantile.merge_into left (part 2000 3000);
  let bc = part 1000 2000 in
  Sk.Quantile.merge_into bc (part 2000 3000);
  let right = part 0 1000 in
  Sk.Quantile.merge_into right bc;
  let whole = part 0 3000 in
  Alcotest.(check int) "counts" 3000 (Sk.Quantile.count left);
  List.iter
    (fun p ->
      let l = Sk.Quantile.quantile left p in
      check_bits "left vs right" l (Sk.Quantile.quantile right p);
      check_bits "left vs single-stream" l (Sk.Quantile.quantile whole p))
    [ 1.0; 10.0; 50.0; 90.0; 99.0 ]

let test_moments_merge () =
  let rng = Rng.create 43 in
  let data = Array.init 5000 (fun _ -> Rng.gaussian rng ~mu:5.0 ~sigma:0.3) in
  let part lo hi =
    let m = Sk.Moments.create () in
    for i = lo to hi - 1 do
      Sk.Moments.add m data.(i)
    done;
    m
  in
  let left = part 0 2000 in
  Sk.Moments.merge_into left (part 2000 3500);
  Sk.Moments.merge_into left (part 3500 5000);
  let bc = part 2000 3500 in
  Sk.Moments.merge_into bc (part 3500 5000);
  let right = part 0 2000 in
  Sk.Moments.merge_into right bc;
  let whole = part 0 5000 in
  Alcotest.(check int) "count" 5000 (Sk.Moments.count left);
  (* Float sums: associative only to rounding — 1e-12 relative, not
     bitwise (which is why the engine fixes the merge order). *)
  Alcotest.(check bool) "mean assoc" true
    (rel (Sk.Moments.mean left) (Sk.Moments.mean right) < 1e-12);
  Alcotest.(check bool) "mean vs stream" true
    (rel (Sk.Moments.mean left) (Sk.Moments.mean whole) < 1e-12);
  Alcotest.(check bool) "stddev vs stream" true
    (rel (Sk.Moments.stddev left) (Sk.Moments.stddev whole) < 1e-9);
  (* Min/max and the exact reference. *)
  let s = Sk.Moments.summary left in
  let exact = Numerics.Stats.summarize_array (Array.copy data) in
  check_bits "min" s.min_value exact.min_value;
  check_bits "max" s.max_value exact.max_value;
  Alcotest.(check bool) "stddev vs two-pass" true
    (rel s.stddev exact.stddev < 1e-9)

let test_yield_curve_merge () =
  let rng = Rng.create 44 in
  let specs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let data = Array.init 2000 (fun _ -> Rng.float rng 5.0) in
  let part lo hi =
    let y = Sk.Yield.create ~specs in
    for i = lo to hi - 1 do
      Sk.Yield.add y data.(i)
    done;
    y
  in
  let merged = part 0 700 in
  Sk.Yield.merge_into merged (part 700 2000);
  let whole = part 0 2000 in
  Alcotest.(check bool) "curve merge exact" true
    (Sk.Yield.curve merged = Sk.Yield.curve whole);
  (* Cross-check the curve against brute-force counting. *)
  Array.iter
    (fun (spec, frac) ->
      let count =
        Array.fold_left (fun k v -> if v <= spec then k + 1 else k) 0 data
      in
      check_bits "curve fraction" frac (float_of_int count /. 2000.0))
    (Sk.Yield.curve whole)

let test_p2_estimator () =
  let rng = Rng.create 45 in
  let data =
    Array.init 20000 (fun _ -> Float.exp (Rng.gaussian rng ~mu:0.0 ~sigma:1.0))
  in
  let p2 = Sk.P2.create ~q:0.95 in
  Array.iter (Sk.P2.add p2) data;
  let exact = Numerics.Stats.percentile_array (Array.copy data) 95.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p2 %.5g vs exact %.5g" (Sk.P2.estimate p2) exact)
    true
    (rel (Sk.P2.estimate p2) exact < 0.05)

(* ---------------------------------------------------------------- *)
(* Sobol                                                             *)
(* ---------------------------------------------------------------- *)

let test_sobol_determinism () =
  let s1 = Numerics.Sobol.create ~scramble:(Rng.create 9) ~dims:4 () in
  let s2 = Numerics.Sobol.create ~scramble:(Rng.create 9) ~dims:4 () in
  let s3 = Numerics.Sobol.create ~scramble:(Rng.create 10) ~dims:4 () in
  let differs = ref false in
  for n = 0 to 199 do
    let p1 = Numerics.Sobol.point s1 n and p2 = Numerics.Sobol.point s2 n in
    Alcotest.(check bool)
      (Printf.sprintf "point %d reproducible" n)
      true (p1 = p2);
    if Numerics.Sobol.point s3 n <> p1 then differs := true
  done;
  Alcotest.(check bool) "scramble seed matters" true !differs;
  (* Unscrambled dimension 0 is the van der Corput sequence (midpoint
     convention shifts every coordinate by 2^-33). *)
  let plain = Numerics.Sobol.create ~dims:2 () in
  List.iteri
    (fun i expected ->
      let p = Numerics.Sobol.point plain (i + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "van der Corput %d" (i + 1))
        true
        (Float.abs (p.(0) -. expected) < 1e-9))
    [ 0.5; 0.75; 0.25; 0.375; 0.875 ]

let star_discrepancy_1d points =
  let xs = Array.copy points in
  Array.sort compare xs;
  let n = Array.length xs in
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      worst :=
        Float.max !worst
          (Float.max
             (Float.abs (x -. (float_of_int i /. float_of_int n)))
             (Float.abs (x -. (float_of_int (i + 1) /. float_of_int n)))))
    xs;
  !worst

let star_discrepancy_2d points =
  let n = Array.length points in
  let worst = ref 0.0 in
  for ia = 1 to 16 do
    for ib = 1 to 16 do
      let a = float_of_int ia /. 16.0 and b = float_of_int ib /. 16.0 in
      let inside =
        Array.fold_left
          (fun k (x, y) -> if x < a && y < b then k + 1 else k)
          0 points
      in
      worst :=
        Float.max !worst
          (Float.abs ((float_of_int inside /. float_of_int n) -. (a *. b)))
    done
  done;
  !worst

let test_sobol_discrepancy () =
  let n = 512 in
  let sobol = Numerics.Sobol.create ~dims:2 () in
  let rng = Rng.create 3 in
  let sob_pts =
    Array.init n (fun i ->
        let p = Numerics.Sobol.point sobol i in
        (p.(0), p.(1)))
  in
  let mc_pts =
    Array.init n (fun _ ->
        let x = Rng.float rng 1.0 in
        let y = Rng.float rng 1.0 in
        (x, y))
  in
  let d1_sob = star_discrepancy_1d (Array.map fst sob_pts) in
  let d1_mc = star_discrepancy_1d (Array.map fst mc_pts) in
  Alcotest.(check bool)
    (Printf.sprintf "1d: sobol %.4f < pseudo %.4f" d1_sob d1_mc)
    true (d1_sob < d1_mc);
  let d2_sob = star_discrepancy_2d sob_pts in
  let d2_mc = star_discrepancy_2d mc_pts in
  Alcotest.(check bool)
    (Printf.sprintf "2d: sobol %.4f < pseudo %.4f" d2_sob d2_mc)
    true (d2_sob < d2_mc)

(* The acceptance criterion on the engine itself: against a 200k-die
   pseudo-random reference, the Sobol sampler with a QUARTER of the dies
   must estimate the mean and the sketch quantiles at least as well (RMS
   over seeds) as the pseudo-random sampler. Fully deterministic — fixed
   seeds, fixed outcome. *)
let test_qmc_beats_mc_quantile () =
  let problem = base_problem () in
  let rms errs =
    sqrt
      (List.fold_left (fun a e -> a +. (e *. e)) 0.0 errs
      /. float_of_int (List.length errs))
  in
  let reference =
    V.yield_mc ~dies:200_000 ~rng:(Rng.create 999) problem
  in
  let errors sampler dies seed =
    let r = V.yield_mc ~dies ~sampler ~rng:(Rng.create seed) problem in
    ( r.V.ptot.summary.mean -. reference.V.ptot.summary.mean,
      r.V.ptot.q50 -. reference.V.ptot.q50,
      r.V.ptot.q95 -. reference.V.ptot.q95 )
  in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let pseudo = List.map (errors `Pseudo 8000) seeds in
  let sobol = List.map (errors `Sobol 2000) seeds in
  let compare_stat name pick =
    let p = rms (List.map pick pseudo) and s = rms (List.map pick sobol) in
    Alcotest.(check bool)
      (Printf.sprintf "%s: sobol@2k rms %.3e <= pseudo@8k rms %.3e" name s p)
      true (s <= p)
  in
  compare_stat "mean" (fun (m, _, _) -> m);
  compare_stat "q50" (fun (_, q, _) -> q);
  compare_stat "q95" (fun (_, _, q) -> q)

(* ---------------------------------------------------------------- *)
(* Engine                                                            *)
(* ---------------------------------------------------------------- *)

(* Bitwise pool-size independence at 10^5 dies, both samplers: the result
   record, the rendered report and the normalized Obs counter fingerprint
   must all be identical at -j 1 / 4 / 8. *)
let test_yield_deterministic_across_jobs () =
  let problem = base_problem () in
  let fingerprint sampler jobs =
    Parallel.Pool.set_default_jobs jobs;
    Obs.set_enabled true;
    Obs.reset ();
    let rng = Rng.create 2006 in
    let r = V.yield_mc ~dies:100_000 ~sampler ~rng problem in
    let counters = Obs.counters ~normalize:true () in
    Obs.set_enabled false;
    Obs.reset ();
    (r, Report.Studies.render_yield r, counters)
  in
  Fun.protect
    ~finally:(fun () -> Parallel.Pool.set_default_jobs 2)
    (fun () ->
      List.iter
        (fun sampler ->
          let name =
            match sampler with `Pseudo -> "pseudo" | `Sobol -> "sobol"
          in
          let r1, s1, c1 = fingerprint sampler 1 in
          let r4, s4, c4 = fingerprint sampler 4 in
          let r8, s8, c8 = fingerprint sampler 8 in
          Alcotest.(check bool) (name ^ ": result j1=j4") true (r1 = r4);
          Alcotest.(check bool) (name ^ ": result j1=j8") true (r1 = r8);
          Alcotest.(check string) (name ^ ": render j1=j4") s1 s4;
          Alcotest.(check string) (name ^ ": render j1=j8") s1 s8;
          Alcotest.(check (list (pair string int)))
            (name ^ ": counters j1=j4") c1 c4;
          Alcotest.(check (list (pair string int)))
            (name ^ ": counters j1=j8") c1 c8)
        [ `Pseudo; `Sobol ])

(* The 50-die differential oracle: the engine's [`Pseudo] sampler must
   draw bitwise the same per-die parameters as [monte_carlo] (sequential
   splits = indexed splits), and the streamed statistics must agree with
   the list-based ones. *)
let test_yield_vs_monte_carlo () =
  let problem = base_problem () in
  let spread = V.default_spread in
  let seq = Rng.create 7 and indexed = Rng.create 7 in
  for i = 0 to 49 do
    let a = V.draw_factors spread (Rng.split seq) problem in
    let b = V.draw_factors spread (Rng.split_nth indexed i) problem in
    let l1, c1, s1, al1, _ = a and l2, c2, s2, al2, _ = b in
    check_bits (Printf.sprintf "die %d leak" i) l1 l2;
    check_bits (Printf.sprintf "die %d cap" i) c1 c2;
    check_bits (Printf.sprintf "die %d speed" i) s1 s2;
    check_bits (Printf.sprintf "die %d alpha" i) al1 al2
  done;
  let mc = V.monte_carlo ~samples:50 ~rng:(Rng.create 7) problem in
  let ym = V.yield_mc ~dies:50 ~chunk:64 ~chain:16 ~rng:(Rng.create 7) problem in
  Alcotest.(check int) "counts" 50 ym.ptot.summary.count;
  Alcotest.(check bool) "mean" true
    (rel ym.ptot.summary.mean mc.ptot_stats.mean < 1e-6);
  Alcotest.(check bool) "stddev" true
    (rel ym.ptot.summary.stddev mc.ptot_stats.stddev < 1e-6);
  Alcotest.(check bool) "min" true
    (rel ym.ptot.summary.min_value mc.ptot_stats.min_value < 1e-6);
  Alcotest.(check bool) "max" true
    (rel ym.ptot.summary.max_value mc.ptot_stats.max_value < 1e-6);
  (* p95 interpolates between order statistics, q95 rounds to one — at 50
     dies they may sit one tail gap apart. *)
  Alcotest.(check bool) "q95" true (rel ym.ptot.q95 mc.ptot_p95 < 0.05);
  Alcotest.(check bool) "vdd mean" true
    (rel ym.vdd.summary.mean mc.vdd_stats.mean < 1e-6)

let test_yield_misc_contracts () =
  let problem = base_problem () in
  let rng = Rng.create 3 in
  let before = Rng.copy rng in
  let r = V.yield_mc ~dies:100 ~chunk:64 ~chain:16 ~rng problem in
  (* The caller's generator is not advanced: the run is a pure function of
     its state. *)
  Alcotest.(check bool) "rng untouched" true
    (Int64.equal (Rng.next_int64 rng) (Rng.next_int64 before));
  (* The yield curve is a CDF on an increasing grid. *)
  let prev = ref (-1.0) in
  Array.iter
    (fun (_, y) ->
      Alcotest.(check bool) "monotone" true (y >= !prev && y >= 0.0 && y <= 1.0);
      prev := y)
    r.yield_curve;
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "dies < 1" (fun () ->
      V.yield_mc ~dies:0 ~rng:(Rng.create 1) problem);
  expect_invalid "chain < 1" (fun () ->
      V.yield_mc ~dies:10 ~chain:0 ~rng:(Rng.create 1) problem);
  expect_invalid "chunk not multiple" (fun () ->
      V.yield_mc ~dies:10 ~chunk:100 ~chain:64 ~rng:(Rng.create 1) problem)

let () =
  Parallel.Pool.set_default_jobs 2;
  Alcotest.run "yield"
    [
      ( "sketch",
        [
          Alcotest.test_case "quantile accuracy (200 cases)" `Quick
            test_quantile_sketch_accuracy;
          Alcotest.test_case "quantile merge associative" `Quick
            test_quantile_merge_associative;
          Alcotest.test_case "moments merge" `Quick test_moments_merge;
          Alcotest.test_case "yield curve merge" `Quick test_yield_curve_merge;
          Alcotest.test_case "p2 estimator" `Quick test_p2_estimator;
        ] );
      ( "sobol",
        [
          Alcotest.test_case "determinism" `Quick test_sobol_determinism;
          Alcotest.test_case "star discrepancy" `Quick test_sobol_discrepancy;
          Alcotest.test_case "qmc beats mc at N/4" `Quick
            test_qmc_beats_mc_quantile;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bitwise across -j 1/4/8" `Quick
            test_yield_deterministic_across_jobs;
          Alcotest.test_case "differential oracle vs monte_carlo" `Quick
            test_yield_vs_monte_carlo;
          Alcotest.test_case "contracts" `Quick test_yield_misc_contracts;
        ] );
    ]
