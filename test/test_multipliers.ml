(* The thirteen multiplier generators: functional correctness (hardware vs
   integer multiplication), structure, pipelining and parallelisation
   machinery. *)

module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic
module Sim = Logicsim.Simulator

(* Adders *)

let test_ripple_carry_adds () =
  let width = 6 in
  let c = C.create "rca" in
  let a = C.add_input_bus c "a" width in
  let b = C.add_input_bus c "b" width in
  let sum, cout = Multipliers.Adders.ripple_carry c a b in
  C.mark_output_bus c sum "s";
  C.mark_output c cout "cout";
  let sim = Sim.create c in
  let check x y =
    Logicsim.Bus.drive sim a x;
    Logicsim.Bus.drive sim b y;
    Sim.settle sim;
    let s = Logicsim.Bus.read_exn sim sum in
    let carry = if Logic.equal (Sim.value sim cout) Logic.One then 1 else 0 in
    Alcotest.(check int)
      (Printf.sprintf "%d + %d" x y)
      (x + y)
      (s lor (carry lsl width))
  in
  let rng = Numerics.Rng.create 5 in
  for _ = 1 to 30 do
    check (Numerics.Rng.int rng 64) (Numerics.Rng.int rng 64)
  done;
  check 63 63;
  check 0 0

let test_sklansky_matches_ripple () =
  let width = 8 in
  let c = C.create "sk" in
  let a = C.add_input_bus c "a" width in
  let b = C.add_input_bus c "b" width in
  let sum = Multipliers.Adders.sklansky c a b in
  C.mark_output_bus c sum "s";
  let sim = Sim.create c in
  let rng = Numerics.Rng.create 8 in
  for _ = 1 to 40 do
    let x = Numerics.Rng.int rng 256 and y = Numerics.Rng.int rng 256 in
    Logicsim.Bus.drive sim a x;
    Logicsim.Bus.drive sim b y;
    Sim.settle sim;
    Alcotest.(check int)
      (Printf.sprintf "%d + %d mod 256" x y)
      ((x + y) land 255)
      (Logicsim.Bus.read_exn sim sum)
  done

let test_sklansky_depth_logarithmic () =
  (* The prefix adder's whole point: depth grows ~log, not linearly. *)
  let depth width =
    let c = C.create "d" in
    let a = C.add_input_bus c "a" width in
    let b = C.add_input_bus c "b" width in
    let sum = Multipliers.Adders.sklansky c a b in
    C.mark_output_bus c sum "s";
    Netlist.Timing.logical_depth c
  in
  let d8 = depth 8 and d32 = depth 32 in
  Alcotest.(check bool)
    (Printf.sprintf "depth(32)=%.1f < 2*depth(8)=%.1f" d32 (2.0 *. d8))
    true
    (d32 < 2.0 *. d8)

let test_add3_folding () =
  let c = C.create "add3" in
  let a = C.add_input c "a" in
  (* Zero inputs: nothing. *)
  Alcotest.(check bool)
    "empty" true
    (Multipliers.Adders.add3 c None None None = (None, None));
  (* One input: a wire, no cell. *)
  let before = C.cell_count c in
  let sum, carry = Multipliers.Adders.add3 c (Some a) None None in
  Alcotest.(check bool) "wire sum" true (sum = Some a && carry = None);
  Alcotest.(check int) "no cell added" before (C.cell_count c);
  (* Two inputs: a half adder. *)
  let sum, carry = Multipliers.Adders.add3 c (Some a) (Some a) None in
  Alcotest.(check bool) "ha outputs" true (sum <> None && carry <> None);
  Alcotest.(check int) "one cell added" (before + 1) (C.cell_count c)

let test_reduce_to_two () =
  let c = C.create "csa" in
  let bits = C.add_input_bus c "x" 9 in
  let columns = Array.make 6 [] in
  Array.iteri (fun i n -> columns.(i mod 2) <- Some n :: columns.(i mod 2)) bits;
  let reduced = Multipliers.Adders.reduce_to_two c columns in
  Array.iteri
    (fun i col ->
      Alcotest.(check bool)
        (Printf.sprintf "column %d height <= 2" i)
        true
        (List.length col <= 2))
    reduced

(* Full multiplier correctness. Exhaustive small-width checks on the two
   combinational cores, corner + random checks on all thirteen 16-bit
   catalog entries. *)

let test_array_core_exhaustive_4bit () =
  let spec = Multipliers.Rca.basic ~bits:4 in
  let sim = Multipliers.Harness.fresh_simulator spec in
  for x = 0 to 15 do
    for y = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y)
        (Multipliers.Harness.compute spec sim x y)
    done
  done

let test_wallace_core_exhaustive_4bit () =
  let spec = Multipliers.Wallace.basic ~bits:4 in
  let sim = Multipliers.Harness.fresh_simulator spec in
  for x = 0 to 15 do
    for y = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y)
        (Multipliers.Harness.compute spec sim x y)
    done
  done

let catalog_correctness_case (entry : Multipliers.Catalog.entry) =
  Alcotest.test_case entry.label `Slow (fun () ->
      let spec = entry.build () in
      let corner_failures = Multipliers.Harness.check_corners spec in
      Alcotest.(check int)
        (entry.label ^ " corners")
        0
        (List.length corner_failures);
      let random_failures =
        Multipliers.Harness.check_random ~seed:2024 spec ~samples:6
      in
      Alcotest.(check int)
        (entry.label ^ " random")
        0
        (List.length random_failures))

(* Pipeliner: streaming equivalence — products appear exactly
   latency-shifted when new operands are applied EVERY cycle. *)
let test_pipeline_streaming () =
  let spec =
    Multipliers.Rca.pipelined ~bits:8 ~stages:2 ~cut:Multipliers.Rca.Horizontal
  in
  let sim = Sim.create spec.circuit in
  let rng = Numerics.Rng.create 31 in
  let inputs = List.init 20 (fun _ -> (Numerics.Rng.int rng 256, Numerics.Rng.int rng 256)) in
  let outputs = ref [] in
  List.iter
    (fun (x, y) ->
      Logicsim.Bus.drive sim spec.a_bus x;
      Logicsim.Bus.drive sim spec.b_bus y;
      Sim.settle sim;
      Sim.clock_tick sim;
      Sim.settle sim;
      outputs := Logicsim.Bus.read sim spec.p_bus :: !outputs)
    inputs;
  let outputs = List.rev !outputs in
  (* Latency = input reg + (stages-1) banks + output reg = stages + 1. *)
  let latency = 3 in
  List.iteri
    (fun i (x, y) ->
      match List.nth_opt outputs (i + latency - 1) with
      | Some (Some product) ->
        Alcotest.(check int)
          (Printf.sprintf "stream slot %d: %d*%d" i x y)
          (x * y) product
      | Some None | None -> ())
    inputs

let test_depth_pipelined_wallace () =
  let basic_depth =
    Netlist.Timing.logical_depth (Multipliers.Wallace.basic ~bits:16).circuit
  in
  let previous = ref basic_depth in
  List.iter
    (fun stages ->
      let spec = Multipliers.Wallace.pipelined ~bits:16 ~stages in
      Alcotest.(check int)
        (Printf.sprintf "pipe%d correct" stages)
        0
        (List.length (Multipliers.Harness.check_random ~seed:6 spec ~samples:5));
      let depth = Netlist.Timing.logical_depth spec.circuit in
      Alcotest.(check bool)
        (Printf.sprintf "pipe%d shallower (%.1f < %.1f)" stages depth !previous)
        true (depth < !previous);
      previous := depth)
    [ 2; 4 ];
  Alcotest.(check bool)
    "stages < 2 rejected" true
    (match Multipliers.Wallace.pipelined ~bits:8 ~stages:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pipeliner_rejects_decreasing_stages () =
  let c = C.create "bad" in
  let a = C.add_input c "a" in
  let x1 = C.add_gate c Cell.Inv [| a |] in
  let x2 = C.add_gate c Cell.Inv [| x1 |] in
  let stage_of_cell id =
    (* First cell stage 1, its consumer stage 0: invalid. *)
    match C.driver c x1 with
    | Some (first, _) -> Some (if id = first then 1 else 0)
    | None -> None
  in
  Alcotest.(check bool)
    "decreasing stage rejected" true
    (match
       Multipliers.Pipeliner.insert c ~stage_of_cell ~max_stage:1
         ~outputs:[| x2 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_pipeliner_shares_chains () =
  let c = C.create "share" in
  let a = C.add_input c "a" in
  let g1 = C.add_gate c Cell.Inv [| a |] in
  let g2 = C.add_gate c Cell.Inv [| a |] in
  let id n = match C.driver c n with Some (i, _) -> i | None -> -1 in
  let stage_of_cell cid =
    if cid = id g1 || cid = id g2 then Some 1 else None
  in
  let before = C.cell_count c in
  let _ = Multipliers.Pipeliner.insert c ~stage_of_cell ~max_stage:1 ~outputs:[||] in
  (* Both inverters need [a] delayed by 1: one shared flip-flop. *)
  Alcotest.(check int) "one shared register"
    (before + 1) (C.cell_count c)

(* Parallelize *)

let test_ring_counter_one_hot () =
  let c = C.create "ring" in
  let phases = Multipliers.Parallelize.ring_counter c ~length:4 ~hot:1 in
  Array.iter (fun p -> C.mark_output c p "phase") phases;
  let sim = Sim.create c in
  let hot_index () =
    let hot = ref [] in
    Array.iteri
      (fun i p -> if Logic.equal (Sim.value sim p) Logic.One then hot := i :: !hot)
      phases;
    !hot
  in
  Alcotest.(check (list int)) "initial hot" [ 1 ] (hot_index ());
  for step = 2 to 9 do
    Sim.clock_tick sim;
    Sim.settle sim;
    Alcotest.(check (list int))
      (Printf.sprintf "step %d" step)
      [ step mod 4 ] (hot_index ())
  done

let test_parallelize_validation () =
  Alcotest.(check bool)
    "copies < 2 rejected" true
    (match
       Multipliers.Parallelize.wrap ~name:"x" ~bits:4 ~copies:1
         ~core:Multipliers.Rca.core ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_parallelize_structure () =
  let basic = Multipliers.Rca.basic ~bits:8 in
  let par2 =
    Multipliers.Parallelize.wrap ~name:"p2" ~bits:8 ~copies:2
      ~core:Multipliers.Rca.core ()
  in
  let nb = (Multipliers.Spec.stats basic).cell_total in
  let np = (Multipliers.Spec.stats par2).cell_total in
  Alcotest.(check bool)
    (Printf.sprintf "N grows ~2x (%d -> %d)" nb np)
    true
    (float_of_int np > 1.8 *. float_of_int nb
    && float_of_int np < 2.8 *. float_of_int nb);
  Alcotest.(check (float 1e-9)) "timing periods" 2.0 par2.timing_periods;
  Alcotest.(check bool)
    "LDeff halves"
    true
    (Multipliers.Spec.logical_depth_effective par2
     < 0.7 *. Multipliers.Spec.logical_depth_effective basic)

(* Cycle-accurate differential test of a replicated (round-robin) design
   against the zero-delay oracle: the control machinery (ring counter,
   loadable registers, output mux) must agree tick for tick, not just on
   settled products. *)
let test_replicated_matches_functional_oracle () =
  let spec =
    Multipliers.Parallelize.wrap ~name:"par2" ~bits:6 ~copies:2
      ~core:Multipliers.Rca.core ()
  in
  let c = spec.circuit in
  let sim = Sim.create c in
  let state = ref (Logicsim.Functional.initial c) in
  let rng = Numerics.Rng.create 61 in
  for cycle = 1 to 24 do
    let bindings =
      List.map
        (fun n -> (n, Logic.of_bool (Numerics.Rng.bool rng)))
        (C.primary_inputs c)
    in
    List.iter (fun (n, v) -> Sim.set_input sim n v) bindings;
    Sim.settle sim;
    state := Logicsim.Functional.set_inputs c !state bindings;
    Sim.clock_tick sim;
    Sim.settle sim;
    state := Logicsim.Functional.clock c !state;
    Array.iter
      (fun n ->
        Alcotest.(check bool)
          (Printf.sprintf "cycle %d product bit %d" cycle n)
          true
          (Logic.equal (Sim.value sim n) (Logicsim.Functional.value !state n)))
      spec.p_bus
  done

let test_verilog_exports_whole_catalog () =
  List.iter
    (fun (entry : Multipliers.Catalog.entry) ->
      let spec = entry.build () in
      let src = Netlist.Verilog.to_string spec.circuit in
      let count needle =
        let n = String.length src and m = String.length needle in
        let rec go i acc =
          if i + m > n then acc
          else go (i + 1) (if String.sub src i m = needle then acc + 1 else acc)
        in
        go 0 0
      in
      Alcotest.(check int)
        (entry.label ^ ": modules balanced")
        (count "\nmodule ") (count "endmodule");
      Alcotest.(check bool)
        (entry.label ^ ": non-trivial")
        true
        (String.length src > 1000))
    Multipliers.Catalog.entries

let test_spec_optimize_shrinks_wallace () =
  let raw = Multipliers.Wallace.basic ~bits:16 in
  let stats = Multipliers.Spec_optimize.stats raw in
  Alcotest.(check bool)
    (Printf.sprintf "folds found (%d const, %d alias)" stats.folded_constants
       stats.aliased)
    true
    (stats.folded_constants > 0 && stats.aliased > 0);
  Alcotest.(check bool)
    "netlist shrinks" true
    (stats.cells_after < stats.cells_before);
  let optimized = Multipliers.Spec_optimize.run raw in
  Alcotest.(check int)
    "still multiplies" 0
    (List.length (Multipliers.Harness.check_random ~seed:77 optimized ~samples:5))

(* Catalog / Spec *)

let test_catalog_shape () =
  Alcotest.(check int) "thirteen entries" 13
    (List.length Multipliers.Catalog.entries);
  let labels = List.map (fun (e : Multipliers.Catalog.entry) -> e.label) Multipliers.Catalog.entries in
  Alcotest.(check int)
    "labels unique" 13
    (List.length (List.sort_uniq compare labels));
  (* Every label matches a Table 1 row label. *)
  List.iter
    (fun label -> ignore (Power_core.Paper_data.table1_find label))
    labels;
  Alcotest.(check bool)
    "find raises" true
    (match Multipliers.Catalog.find "nonsense" with
    | _ -> false
    | exception Not_found -> true)

let test_spec_ld_eff_styles () =
  let basic = Multipliers.Rca.basic ~bits:8 in
  Alcotest.(check bool)
    "flat ld = sta ld" true
    (Multipliers.Spec.logical_depth_effective basic
     = Netlist.Timing.logical_depth basic.circuit);
  let seq = Multipliers.Sequential.basic ~bits:8 in
  Alcotest.(check bool)
    "sequential ld multiplied" true
    (Multipliers.Spec.logical_depth_effective seq
     = 8.0 *. Netlist.Timing.logical_depth seq.circuit)

let test_cut_preview_monotone () =
  List.iter
    (fun cut ->
      let grid = Multipliers.Rca.cut_preview ~bits:8 ~stages:4 ~cut in
      (* Along carry edges (row+1, same col) stages never decrease. *)
      for row = 0 to Array.length grid - 2 do
        for col = 0 to Array.length grid.(0) - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "monotone at (%d,%d)" row col)
            true
            (grid.(row + 1).(col) >= grid.(row).(col))
        done
      done)
    [ Multipliers.Rca.Horizontal; Multipliers.Rca.Diagonal ]

let test_all_netlists_well_formed () =
  List.iter
    (fun (entry : Multipliers.Catalog.entry) ->
      let spec = entry.build () in
      Alcotest.(check int)
        (entry.label ^ " structurally sound")
        0
        (List.length (Netlist.Check.errors spec.circuit)))
    Multipliers.Catalog.entries

let prop_rca8_multiplies =
  QCheck.Test.make ~name:"8-bit RCA multiplies" ~count:30
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (let spec = Multipliers.Rca.basic ~bits:8 in
     let sim = Multipliers.Harness.fresh_simulator spec in
     fun (x, y) -> Multipliers.Harness.compute spec sim x y = x * y)

let prop_wallace8_multiplies =
  QCheck.Test.make ~name:"8-bit Wallace multiplies" ~count:30
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (let spec = Multipliers.Wallace.basic ~bits:8 in
     let sim = Multipliers.Harness.fresh_simulator spec in
     fun (x, y) -> Multipliers.Harness.compute spec sim x y = x * y)

let prop_seq8_multiplies =
  QCheck.Test.make ~name:"8-bit sequential multiplies" ~count:15
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (let spec = Multipliers.Sequential.basic ~bits:8 in
     let sim = Multipliers.Harness.fresh_simulator spec in
     fun (x, y) -> Multipliers.Harness.compute spec sim x y = x * y)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "multipliers"
    [
      ( "adders",
        [
          Alcotest.test_case "ripple carry" `Quick test_ripple_carry_adds;
          Alcotest.test_case "sklansky vs ripple" `Quick test_sklansky_matches_ripple;
          Alcotest.test_case "sklansky depth" `Quick test_sklansky_depth_logarithmic;
          Alcotest.test_case "add3 folding" `Quick test_add3_folding;
          Alcotest.test_case "reduce to two" `Quick test_reduce_to_two;
        ] );
      ( "exhaustive-4bit",
        [
          Alcotest.test_case "rca" `Quick test_array_core_exhaustive_4bit;
          Alcotest.test_case "wallace" `Quick test_wallace_core_exhaustive_4bit;
        ] );
      ( "catalog-correctness",
        List.map catalog_correctness_case Multipliers.Catalog.entries );
      ( "pipelining",
        [
          Alcotest.test_case "streaming equivalence" `Quick test_pipeline_streaming;
          Alcotest.test_case "depth-based wallace" `Quick test_depth_pipelined_wallace;
          Alcotest.test_case "rejects decreasing stages" `Quick
            test_pipeliner_rejects_decreasing_stages;
          Alcotest.test_case "shares register chains" `Quick
            test_pipeliner_shares_chains;
        ] );
      ( "parallelize",
        [
          Alcotest.test_case "ring counter one-hot" `Quick test_ring_counter_one_hot;
          Alcotest.test_case "validation" `Quick test_parallelize_validation;
          Alcotest.test_case "structure" `Quick test_parallelize_structure;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "replicated vs functional" `Quick
            test_replicated_matches_functional_oracle;
          Alcotest.test_case "verilog whole catalog" `Slow
            test_verilog_exports_whole_catalog;
          Alcotest.test_case "spec optimize shrinks wallace" `Quick
            test_spec_optimize_shrinks_wallace;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "shape" `Quick test_catalog_shape;
          Alcotest.test_case "ld_eff per style" `Quick test_spec_ld_eff_styles;
          Alcotest.test_case "cut preview monotone" `Quick test_cut_preview_monotone;
          Alcotest.test_case "all netlists well-formed" `Slow
            test_all_netlists_well_formed;
        ] );
      ( "properties",
        qsuite [ prop_rca8_multiplies; prop_wallace8_multiplies; prop_seq8_multiplies ] );
    ]
