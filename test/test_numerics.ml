(* Unit and property tests for the numerics substrate. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* Rng *)

let test_rng_determinism () =
  let a = Numerics.Rng.create 123 and b = Numerics.Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Numerics.Rng.next_int64 a) (Numerics.Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Numerics.Rng.create 1 and b = Numerics.Rng.create 2 in
  Alcotest.(check bool)
    "different seeds diverge" false
    (Numerics.Rng.next_int64 a = Numerics.Rng.next_int64 b)

let test_rng_copy () =
  let a = Numerics.Rng.create 5 in
  ignore (Numerics.Rng.next_int64 a);
  let b = Numerics.Rng.copy a in
  Alcotest.(check int64)
    "copy continues identically" (Numerics.Rng.next_int64 a)
    (Numerics.Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Numerics.Rng.create 7 in
  let b = Numerics.Rng.split a in
  Alcotest.(check bool)
    "split stream differs" false
    (Numerics.Rng.next_int64 a = Numerics.Rng.next_int64 b)

let test_rng_int_bounds_raises () =
  let rng = Numerics.Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Numerics.Rng.int rng 0))

let test_rng_gaussian_moments () =
  let rng = Numerics.Rng.create 11 in
  let samples =
    List.init 20000 (fun _ -> Numerics.Rng.gaussian rng ~mu:2.0 ~sigma:0.5)
  in
  let summary = Numerics.Stats.summarize samples in
  check_close 0.02 "mean" 2.0 summary.mean;
  check_close 0.02 "stddev" 0.5 summary.stddev

let check_bits name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.17g = %.17g" name a b)
    true
    (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

(* Regression for the Box-Muller second-draw cache: the gaussian stream is
   a deterministic function of the seed, two draws per transform. *)
let test_rng_gaussian_determinism () =
  let a = Numerics.Rng.create 123 and b = Numerics.Rng.create 123 in
  for i = 1 to 100 do
    (* Vary mu/sigma so cached unit normals are re-scaled per call. *)
    let mu = float_of_int (i mod 5) and sigma = 0.5 +. float_of_int (i mod 3) in
    check_bits "same gaussian stream"
      (Numerics.Rng.gaussian a ~mu ~sigma)
      (Numerics.Rng.gaussian b ~mu ~sigma)
  done

(* Reconstruct both branches of one transform from the raw uniforms: the
   first call returns the cosine branch, the second replays the cached
   sine branch under its own mu/sigma, and the third burns fresh
   uniforms. *)
let test_rng_gaussian_box_muller_pair () =
  let g = Numerics.Rng.create 77 in
  let u = Numerics.Rng.copy g in
  let g1 = Numerics.Rng.gaussian g ~mu:0.0 ~sigma:1.0 in
  let g2 = Numerics.Rng.gaussian g ~mu:3.0 ~sigma:2.0 in
  let u1 = Numerics.Rng.float u 1.0 in
  let u2 = Numerics.Rng.float u 1.0 in
  Alcotest.(check bool) "u1 nonzero" true (u1 > 0.0);
  let r = sqrt (-2.0 *. log u1) in
  let theta = 2.0 *. Float.pi *. u2 in
  check_bits "cosine branch" (0.0 +. (1.0 *. r *. cos theta)) g1;
  check_bits "cached sine branch" (3.0 +. (2.0 *. (r *. sin theta))) g2;
  let g3 = Numerics.Rng.gaussian g ~mu:0.0 ~sigma:1.0 in
  let u3 = Numerics.Rng.float u 1.0 in
  let u4 = Numerics.Rng.float u 1.0 in
  Alcotest.(check bool) "u3 nonzero" true (u3 > 0.0);
  let r' = sqrt (-2.0 *. log u3) in
  check_bits "third draw uses fresh uniforms"
    (0.0 +. (1.0 *. r' *. cos (2.0 *. Float.pi *. u4)))
    g3

let test_rng_gaussian_cache_across_copy_and_split () =
  (* A copy carries the pending sine branch... *)
  let a = Numerics.Rng.create 11 in
  ignore (Numerics.Rng.gaussian a ~mu:0.0 ~sigma:1.0);
  let c = Numerics.Rng.copy a in
  check_bits "copy replays pending branch"
    (Numerics.Rng.gaussian a ~mu:0.0 ~sigma:1.0)
    (Numerics.Rng.gaussian c ~mu:0.0 ~sigma:1.0);
  (* ...but a split child starts cache-free: parents with equal states and
     different pending caches produce identical children. *)
  let p1 = Numerics.Rng.create 11 in
  ignore (Numerics.Rng.gaussian p1 ~mu:0.0 ~sigma:1.0);
  let p2 = Numerics.Rng.create 11 in
  ignore (Numerics.Rng.float p2 1.0);
  ignore (Numerics.Rng.float p2 1.0);
  let c1 = Numerics.Rng.split p1 and c2 = Numerics.Rng.split p2 in
  check_bits "split discards pending branch"
    (Numerics.Rng.gaussian c1 ~mu:0.0 ~sigma:1.0)
    (Numerics.Rng.gaussian c2 ~mu:0.0 ~sigma:1.0)

let test_rng_split_nth () =
  let seq = Numerics.Rng.create 5 and indexed = Numerics.Rng.create 5 in
  let probe = Numerics.Rng.copy indexed in
  for n = 0 to 9 do
    let a = Numerics.Rng.split seq in
    let b = Numerics.Rng.split_nth indexed n in
    Alcotest.(check int64)
      (Printf.sprintf "split_nth %d = %dth sequential split" n n)
      (Numerics.Rng.next_int64 a) (Numerics.Rng.next_int64 b)
  done;
  (* split_nth never advances its argument. *)
  Alcotest.(check int64) "parent untouched"
    (Numerics.Rng.next_int64 probe)
    (Numerics.Rng.next_int64 indexed);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split_nth: negative index") (fun () ->
      ignore (Numerics.Rng.split_nth (Numerics.Rng.create 1) (-1)))

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Numerics.Rng.create seed in
      let v = Numerics.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_in_range =
  QCheck.Test.make ~name:"Rng.float stays in [0, bound)" ~count:500
    QCheck.(pair small_int pos_float)
    (fun (seed, bound) ->
      QCheck.assume (Float.is_finite bound && bound > 0.0);
      let rng = Numerics.Rng.create seed in
      let v = Numerics.Rng.float rng bound in
      v >= 0.0 && v < bound)

(* Kahan *)

let test_kahan_pathological () =
  (* 1e16 + 1.0 repeated: naive summation loses every unit. *)
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc 1e16;
  for _ = 1 to 1000 do
    Numerics.Kahan.add acc 1.0
  done;
  Numerics.Kahan.add acc (-1e16);
  check_float "compensated" 1000.0 (Numerics.Kahan.sum acc)

let test_kahan_agreement () =
  let xs = List.init 100 (fun i -> float_of_int i *. 0.1) in
  check_close 1e-9 "sum_list = sum_array" (Numerics.Kahan.sum_list xs)
    (Numerics.Kahan.sum_array (Array.of_list xs));
  check_close 1e-9 "sum_by id" (Numerics.Kahan.sum_list xs)
    (Numerics.Kahan.sum_by Fun.id xs)

(* Rootfind *)

let test_bisect_sqrt2 () =
  let root = Numerics.Rootfind.bisect ~f:(fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_close 1e-9 "sqrt 2" (sqrt 2.0) root

let test_brent_cos () =
  let root = Numerics.Rootfind.brent ~f:(fun x -> cos x -. x) 0.0 1.0 in
  check_close 1e-9 "dottie number" 0.7390851332151607 root

let test_brent_linear () =
  let root = Numerics.Rootfind.brent ~f:(fun x -> (2.0 *. x) -. 3.0) 0.0 5.0 in
  check_close 1e-9 "linear root" 1.5 root

let test_no_bracket () =
  Alcotest.(check bool)
    "raises No_bracket" true
    (match Numerics.Rootfind.bisect ~f:(fun x -> (x *. x) +. 1.0) 0.0 1.0 with
    | _ -> false
    | exception Numerics.Rootfind.No_bracket _ -> true)

let test_newton_cbrt () =
  let root =
    Numerics.Rootfind.newton
      ~f:(fun x -> (x ** 3.0) -. 27.0)
      ~df:(fun x -> 3.0 *. x *. x)
      2.0
  in
  check_close 1e-9 "cbrt 27" 3.0 root

let test_newton_diverged_zero_derivative () =
  (* f has no root and a stationary start: the very first step dies, and
     the exception carries where and when. *)
  Alcotest.check_raises "zero derivative"
    (Numerics.Rootfind.Diverged
       { last = 0.0; iterations = 0; reason = "zero derivative" })
    (fun () ->
      ignore
        (Numerics.Rootfind.newton
           ~f:(fun x -> (x *. x) +. 1.0)
           ~df:(fun x -> 2.0 *. x)
           0.0))

let test_newton_diverged_non_finite () =
  (* A huge residual over a tiny slope overflows the step to infinity. *)
  Alcotest.check_raises "non-finite iterate"
    (Numerics.Rootfind.Diverged
       { last = 0.0; iterations = 0; reason = "non-finite iterate" })
    (fun () ->
      ignore
        (Numerics.Rootfind.newton
           ~f:(fun _ -> 1e300)
           ~df:(fun _ -> 1e-300)
           0.0))

let test_finite_guard () =
  let open Numerics.Finite in
  Alcotest.(check bool) "finite ok" true (violation 1.0 = None);
  Alcotest.(check bool) "nan" true (violation Float.nan = Some Nan);
  Alcotest.(check bool) "+inf" true (violation infinity = Some Pos_inf);
  Alcotest.(check bool) "-inf" true (violation neg_infinity = Some Neg_inf);
  check_close 1e-9 "clamp id" 3.5 (clamp 3.5);
  check_close 1.0 "clamp +inf" huge (clamp infinity);
  check_close 1.0 "clamp -inf" (-.huge) (clamp neg_infinity);
  check_close 1e-9 "clamp nan default" 0.0 (clamp Float.nan);
  check_close 1e-9 "clamp nan custom" 7.0 (clamp ~nan:7.0 Float.nan)

let test_expand_bracket () =
  match Numerics.Rootfind.expand_bracket ~f:(fun x -> x -. 10.0) 0.0 1.0 with
  | Some (lo, hi) ->
    Alcotest.(check bool) "brackets the root" true (lo <= 10.0 && hi >= 10.0)
  | None -> Alcotest.fail "expected a bracket"

let prop_brent_polynomial_roots =
  QCheck.Test.make ~name:"brent finds the root of (x - r)^3 + (x - r)"
    ~count:200
    QCheck.(float_range (-50.0) 50.0)
    (fun r ->
      let f x = ((x -. r) ** 3.0) +. (x -. r) in
      let root = Numerics.Rootfind.brent ~f (r -. 60.0) (r +. 60.0) in
      Float.abs (root -. r) < 1e-6)

(* Minimize *)

let test_golden_quadratic () =
  let r =
    Numerics.Minimize.golden_section
      ~f:(fun x -> (x -. Float.pi) ** 2.0)
      0.0 10.0
  in
  check_close 1e-6 "argmin" Float.pi r.x

let test_grid_then_golden_multimodal () =
  (* Two valleys; the global one is at ~7.1. *)
  let f x = ((x -. 7.0) ** 2.0) -. (2.0 *. Float.exp (-.((x -. 2.0) ** 2.0))) in
  let r = Numerics.Minimize.grid_then_golden ~samples:100 ~f 0.0 10.0 in
  check_close 0.01 "finds global valley" 7.0 r.x

let test_grid2_bowl () =
  let r =
    Numerics.Minimize.grid2
      ~f:(fun x y -> ((x -. 1.0) ** 2.0) +. ((y +. 2.0) ** 2.0))
      ~x0_range:(-5.0, 5.0) ~x1_range:(-5.0, 5.0) ~samples:101
  in
  check_close 0.11 "x0" 1.0 r.x0;
  check_close 0.11 "x1" (-2.0) r.x1

let prop_minimum_not_above_samples =
  QCheck.Test.make ~name:"grid_then_golden <= coarse samples" ~count:100
    QCheck.(pair (float_range (-3.0) 3.0) (float_range 0.2 4.0))
    (fun (center, width) ->
      let f x = Float.abs ((x -. center) /. width) ** 1.5 in
      let r = Numerics.Minimize.grid_then_golden ~samples:32 ~f (-5.0) 5.0 in
      (* Compare against an independent coarse scan. *)
      let coarse =
        List.init 50 (fun i -> f (-5.0 +. (float_of_int i *. 10.0 /. 49.0)))
      in
      List.for_all (fun v -> r.fx <= v +. 1e-12) coarse)

(* Fit *)

let test_linear_exact () =
  let pts = List.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) -. 1.0)) in
  let line = Numerics.Fit.linear pts in
  check_close 1e-9 "slope" 2.5 line.slope;
  check_close 1e-9 "intercept" (-1.0) line.intercept;
  check_close 1e-9 "r2" 1.0 line.r_squared;
  check_close 1e-9 "max residual" 0.0 line.max_residual

let test_linear_degenerate () =
  Alcotest.(check bool)
    "single point rejected" true
    (match Numerics.Fit.linear [ (1.0, 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_nelder_mead_quadratic () =
  let f v = ((v.(0) -. 3.0) ** 2.0) +. ((v.(1) +. 1.0) ** 2.0) in
  let best, value = Numerics.Fit.nelder_mead ~f [| 0.0; 0.0 |] in
  check_close 1e-4 "x" 3.0 best.(0);
  check_close 1e-4 "y" (-1.0) best.(1);
  check_close 1e-6 "min" 0.0 value

let prop_linear_recovers_line =
  QCheck.Test.make ~name:"linear fit recovers exact lines" ~count:200
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (slope, intercept) ->
      let pts =
        List.init 8 (fun i ->
            let x = float_of_int i in
            (x, (slope *. x) +. intercept))
      in
      let line = Numerics.Fit.linear pts in
      Float.abs (line.slope -. slope) < 1e-6
      && Float.abs (line.intercept -. intercept) < 1e-6)

(* Stats *)

let test_summarize () =
  let s = Numerics.Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.count;
  check_float "mean" 2.5 s.mean;
  check_float "min" 1.0 s.min_value;
  check_float "max" 4.0 s.max_value;
  check_close 1e-9 "stddev" (sqrt (5.0 /. 3.0)) s.stddev

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Numerics.Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Numerics.Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Numerics.Stats.percentile xs 50.0)

let test_relative_error () =
  check_float "signed" (-0.1) (Numerics.Stats.relative_error ~reference:10.0 9.0);
  check_float "max abs" 0.2
    (Numerics.Stats.max_abs_relative_error [ (10.0, 9.0); (10.0, 12.0) ])

(* Interp *)

let test_interp_eval () =
  let t = Numerics.Interp.of_points [ (0.0, 0.0); (1.0, 10.0); (2.0, 0.0) ] in
  check_float "node" 10.0 (Numerics.Interp.eval t 1.0);
  check_float "midpoint" 5.0 (Numerics.Interp.eval t 0.5);
  check_float "extrapolation" (-10.0) (Numerics.Interp.eval t 3.0)

let test_interp_argmin_map () =
  let t = Numerics.Interp.of_function ~f:(fun x -> (x -. 1.0) ** 2.0) ~lo:0.0 ~hi:2.0 ~samples:21 in
  let x, y = Numerics.Interp.argmin t in
  check_close 1e-9 "argmin x" 1.0 x;
  check_close 1e-9 "argmin y" 0.0 y;
  let t2 = Numerics.Interp.map_y (fun y -> y +. 1.0) t in
  check_close 1e-9 "map_y" 1.0 (snd (Numerics.Interp.argmin t2))

let test_interp_rejects_unsorted () =
  Alcotest.(check bool)
    "unsorted rejected" true
    (match Numerics.Interp.of_points [ (1.0, 0.0); (0.5, 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Extra edge cases across the numerics substrate. *)

let test_percentile_validation () =
  Alcotest.(check bool)
    "p out of range" true
    (match Numerics.Stats.percentile [ 1.0 ] 120.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "empty rejected" true
    (match Numerics.Stats.percentile [] 50.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_relative_error_zero_reference () =
  Alcotest.(check bool)
    "zero reference rejected" true
    (match Numerics.Stats.relative_error ~reference:0.0 1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_stddev_degenerate () =
  check_float "single sample" 0.0 (Numerics.Stats.stddev [ 5.0 ]);
  check_float "empty" 0.0 (Numerics.Stats.stddev [])

let test_nelder_mead_with_scale () =
  let f v = Float.abs (v.(0) -. 100.0) in
  let best, _ =
    Numerics.Fit.nelder_mead ~scale:[| 50.0 |] ~f [| 0.0 |]
  in
  check_close 0.01 "large scale reaches far minima" 100.0 best.(0)

let test_nelder_mead_validation () =
  Alcotest.(check bool)
    "empty start rejected" true
    (match Numerics.Fit.nelder_mead ~f:(fun _ -> 0.0) [||] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "scale length mismatch rejected" true
    (match
       Numerics.Fit.nelder_mead ~scale:[| 1.0; 2.0 |]
         ~f:(fun v -> v.(0))
         [| 0.0 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_interp_of_function_bounds () =
  let t = Numerics.Interp.of_function ~f:sin ~lo:0.0 ~hi:1.0 ~samples:11 in
  let lo, hi = Numerics.Interp.domain t in
  check_float "lo" 0.0 lo;
  check_float "hi" 1.0 hi;
  Alcotest.(check int) "points" 11 (List.length (Numerics.Interp.points t))

let test_golden_section_iterations_bounded () =
  let r =
    Numerics.Minimize.golden_section ~max_iter:10 ~f:(fun x -> x *. x)
      (-100.0) 100.0
  in
  Alcotest.(check bool) "iterations capped" true (r.iterations <= 10)

let test_grid_then_golden_validation () =
  Alcotest.(check bool)
    "samples < 3 rejected" true
    (match
       Numerics.Minimize.grid_then_golden ~samples:2 ~f:(fun x -> x) 0.0 1.0
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Interval arithmetic: outward rounding, extended division, signed-zero
   and zero-width regressions, and random-point soundness. *)

module Iv = Numerics.Interval

let iv_bounds = Alcotest.(pair (float 0.0) (float 0.0))
let bounds (x : Iv.t) = (x.Iv.lo, x.Iv.hi)

let test_interval_construction () =
  Alcotest.check_raises "nan endpoint"
    (Invalid_argument "Interval.make: NaN endpoint") (fun () ->
      ignore (Iv.make Float.nan 1.0));
  Alcotest.check_raises "inverted endpoints"
    (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (Iv.make 2.0 1.0));
  Alcotest.(check bool) "degenerate ok" true
    (Iv.width (Iv.of_float 3.0) <= 1e-300);
  Alcotest.(check bool) "entire is unbounded" false (Iv.is_finite Iv.entire);
  Alcotest.(check bool) "finite box" true (Iv.is_finite (Iv.make 0.0 1.0))

(* Regression: a -0.0 endpoint must be canonicalised to +0.0, else
   extended division flips the sign of the infinite end (1/-0 = -inf). *)
let test_interval_signed_zero_division () =
  let neg_zero = -0.0 in
  let d = Iv.div Iv.one (Iv.make neg_zero 2.0) in
  Alcotest.(check bool) "1/[−0,2] is the upper half-line" true
    (Float.abs (d.Iv.lo -. 0.5) < 1e-12 && d.Iv.hi = Float.infinity);
  let d' = Iv.div Iv.one (Iv.make (-2.0) neg_zero) in
  Alcotest.(check bool) "1/[−2,−0] is the lower half-line" true
    (d'.Iv.lo = Float.neg_infinity && Float.abs (d'.Iv.hi +. 0.5) < 1e-12);
  (* The stored endpoint itself is +0.0, not -0.0. *)
  let z = Iv.make neg_zero neg_zero in
  Alcotest.(check bool) "endpoints canonicalised" false
    (Numerics.Finite.is_signed_zero z.Iv.lo
    || Numerics.Finite.is_signed_zero z.Iv.hi)

let test_interval_division_edges () =
  Alcotest.check_raises "[0,0] denominator"
    (Invalid_argument "Interval.div: division by the zero-width box [0, 0]")
    (fun () -> ignore (Iv.div Iv.one Iv.zero));
  let straddle = Iv.div Iv.one (Iv.make (-1.0) 1.0) in
  Alcotest.check iv_bounds "0 interior: entire"
    (Float.neg_infinity, Float.infinity)
    (bounds straddle);
  let both_zero = Iv.div (Iv.make (-1.0) 1.0) (Iv.make 0.0 2.0) in
  Alcotest.check iv_bounds "0/0 case stays entire"
    (Float.neg_infinity, Float.infinity)
    (bounds both_zero);
  (* Sign-definite denominator through zero-width numerator. *)
  let z = Iv.div Iv.zero (Iv.make 1.0 2.0) in
  Alcotest.(check bool) "0/[1,2] is a 1-ulp box around 0" true
    (Iv.contains z 0.0 && Iv.mag z <= 1e-300)

let test_interval_exp_edges () =
  (* exp of a huge negative bound underflows to 0; the outward step must
     not cross below zero. *)
  let e = Iv.exp (Iv.make (-1e9) (-1e8)) in
  Alcotest.(check bool) "underflow clamped at 0" true (e.Iv.lo >= 0.0);
  let u = Iv.exp Iv.zero in
  Alcotest.(check bool) "exp [0,0] contains 1" true
    (Iv.contains u 1.0 && Iv.width u < 1e-12);
  (* log straddling zero: -inf lower end, finite upper. *)
  let l = Iv.log (Iv.make 0.0 (Stdlib.exp 1.0)) in
  Alcotest.(check bool) "log [0,e]" true
    (l.Iv.lo = Float.neg_infinity && l.Iv.hi >= 1.0 && l.Iv.hi < 1.0 +. 1e-12);
  Alcotest.(check bool) "log of non-positive box rejected" true
    (match Iv.log (Iv.make (-2.0) (-1.0)) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_interval_zero_width_ops () =
  (* Degenerate boxes stay within a few ulps through every operation. *)
  let x = Iv.of_float 0.7 in
  List.iter
    (fun (name, (r : Iv.t), exact) ->
      Alcotest.(check bool)
        (name ^ " contains exact") true (Iv.contains r exact);
      Alcotest.(check bool)
        (name ^ " stays thin") true
        (Iv.width r <= 8.0 *. Float.abs exact *. epsilon_float +. 1e-300))
    [
      ("add", Iv.add x x, 1.4);
      ("mul", Iv.mul x x, 0.49);
      ("sqr", Iv.sqr x, 0.49);
      ("div", Iv.div x x, 1.0);
      ("exp", Iv.exp x, Stdlib.exp 0.7);
      ("log", Iv.log x, Stdlib.log 0.7);
      ("pow", Iv.pow_scalar x 1.3, 0.7 ** 1.3);
    ];
  Alcotest.(check bool) "thin box does not split" true
    (Iv.split (Iv.of_float 0.7) = None)

let test_interval_set_ops () =
  let a = Iv.make 0.0 2.0 and b = Iv.make 1.0 3.0 in
  Alcotest.check iv_bounds "hull" (0.0, 3.0) (bounds (Iv.hull a b));
  Alcotest.check iv_bounds "intersect" (1.0, 2.0)
    (bounds (Iv.meet_exn a b));
  Alcotest.(check bool) "disjoint intersect" true
    (Iv.intersect (Iv.make 0.0 1.0) (Iv.make 2.0 3.0) = None);
  Alcotest.(check bool) "subset" true (Iv.subset b (Iv.make 0.0 4.0));
  Alcotest.(check bool) "not subset" false (Iv.subset b a);
  match Iv.split (Iv.make 0.0 4.0) with
  | None -> Alcotest.fail "expected a split"
  | Some (l, r) ->
    Alcotest.(check bool) "split covers" true
      (l.Iv.lo = 0.0 && r.Iv.hi = 4.0 && l.Iv.hi = r.Iv.lo)

let iv_gen =
  QCheck.(
    map
      (fun (a, b) -> (Float.min a b, Float.max a b))
      (pair (float_range (-50.0) 50.0) (float_range (-50.0) 50.0)))

(* Sample t in [0,1] deterministically from the pair to get an interior
   point of each operand box. *)
let interior (lo, hi) t = lo +. (t *. (hi -. lo))

let prop_interval_arith_sound =
  QCheck.Test.make ~name:"interval +,-,*,sqr enclose real arithmetic"
    ~count:500
    QCheck.(triple iv_gen iv_gen (float_range 0.0 1.0))
    (fun ((alo, ahi), (blo, bhi), t) ->
      let a = Iv.make alo ahi and b = Iv.make blo bhi in
      let x = interior (alo, ahi) t and y = interior (blo, bhi) (1.0 -. t) in
      Iv.contains (Iv.add a b) (x +. y)
      && Iv.contains (Iv.sub a b) (x -. y)
      && Iv.contains (Iv.mul a b) (x *. y)
      && Iv.contains (Iv.sqr a) (x *. x)
      && Iv.contains (Iv.neg a) (-.x)
      && Iv.contains (Iv.scale 3.5 a) (3.5 *. x))

let prop_interval_div_sound =
  QCheck.Test.make ~name:"extended division encloses x/y" ~count:500
    QCheck.(triple iv_gen iv_gen (float_range 0.0 1.0))
    (fun ((alo, ahi), (blo, bhi), t) ->
      QCheck.assume (not (blo = 0.0 && bhi = 0.0));
      let a = Iv.make alo ahi and b = Iv.make blo bhi in
      let x = interior (alo, ahi) t and y = interior (blo, bhi) (1.0 -. t) in
      QCheck.assume (y <> 0.0);
      Iv.contains (Iv.div a b) (x /. y))

let prop_interval_transcendental_sound =
  QCheck.Test.make ~name:"exp/log/pow enclose libm" ~count:500
    QCheck.(pair (pair (float_range 0.001 30.0) (float_range 0.001 30.0))
              (float_range 0.0 1.0))
    (fun ((a, b), t) ->
      let lo = Float.min a b and hi = Float.max a b in
      let x = Iv.make lo hi in
      let p = interior (lo, hi) t in
      Iv.contains (Iv.exp x) (Stdlib.exp p)
      && Iv.contains (Iv.log x) (Stdlib.log p)
      && Iv.contains (Iv.pow_scalar x 1.37) (p ** 1.37)
      && Iv.contains (Iv.pow_scalar x (-0.8)) (p ** -0.8))

(* The affine form of (v - v^2/10) over a shared symbol must both enclose
   every point value and beat the naive interval bound (that is the whole
   point of tracking correlation). *)
let prop_affine_sound_and_tighter =
  QCheck.Test.make ~name:"affine forms enclose and tighten" ~count:300
    QCheck.(pair (pair (float_range 0.1 2.0) (float_range 0.1 2.0))
              (float_range 0.0 1.0))
    (fun ((a, b), t) ->
      let lo = Float.min a b and hi = Float.max a b +. 0.1 in
      let v = Iv.make lo hi in
      let av = Iv.Affine.of_interval ~id:0 v in
      let f = Iv.Affine.sub av (Iv.Affine.scale 0.1 (Iv.Affine.sqr av)) in
      let enc = Iv.Affine.to_interval f in
      let p = interior (lo, hi) t in
      let exact = p -. (0.1 *. p *. p) in
      let naive = Iv.sub v (Iv.scale 0.1 (Iv.sqr v)) in
      Iv.contains enc exact && Iv.width enc <= Iv.width naive +. 1e-12)

let test_affine_const_and_interval_roundtrip () =
  let c = Iv.Affine.const 2.5 in
  Alcotest.(check bool) "const has no spread" true
    (Iv.width (Iv.Affine.to_interval c) <= 1e-12);
  let v = Iv.make 1.0 3.0 in
  let f = Iv.Affine.of_interval ~id:7 v in
  Alcotest.(check bool) "of_interval covers the box" true
    (Iv.subset v (Iv.Affine.to_interval f));
  (* Correlation: x - x over a shared symbol collapses to ~0. *)
  let d = Iv.Affine.to_interval (Iv.Affine.sub f f) in
  Alcotest.(check bool) "x - x collapses" true (Iv.mag d < 1e-9)

let test_interval_finite_violation () =
  Alcotest.(check bool) "finite box clean" true
    (Iv.finite_violation (Iv.make 0.0 1.0) = None);
  (match Iv.finite_violation Iv.entire with
  | Some ("lo", Numerics.Finite.Neg_inf) -> ()
  | _ -> Alcotest.fail "entire should report its -inf lower end");
  match Iv.finite_violation (Iv.make 0.0 Float.infinity) with
  | Some ("hi", Numerics.Finite.Pos_inf) -> ()
  | _ -> Alcotest.fail "upper half-line should report its +inf end"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "numerics"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bound validation" `Quick test_rng_int_bounds_raises;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "gaussian determinism" `Quick
            test_rng_gaussian_determinism;
          Alcotest.test_case "gaussian box-muller pairing" `Quick
            test_rng_gaussian_box_muller_pair;
          Alcotest.test_case "gaussian cache vs copy/split" `Quick
            test_rng_gaussian_cache_across_copy_and_split;
          Alcotest.test_case "split_nth" `Quick test_rng_split_nth;
        ]
        @ qsuite [ prop_rng_int_in_range; prop_rng_float_in_range ] );
      ( "kahan",
        [
          Alcotest.test_case "pathological series" `Quick test_kahan_pathological;
          Alcotest.test_case "api agreement" `Quick test_kahan_agreement;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
          Alcotest.test_case "brent cos" `Quick test_brent_cos;
          Alcotest.test_case "brent linear" `Quick test_brent_linear;
          Alcotest.test_case "no bracket" `Quick test_no_bracket;
          Alcotest.test_case "newton cbrt" `Quick test_newton_cbrt;
          Alcotest.test_case "newton diverged: zero derivative" `Quick
            test_newton_diverged_zero_derivative;
          Alcotest.test_case "newton diverged: non-finite" `Quick
            test_newton_diverged_non_finite;
          Alcotest.test_case "finite guard" `Quick test_finite_guard;
          Alcotest.test_case "expand bracket" `Quick test_expand_bracket;
        ]
        @ qsuite [ prop_brent_polynomial_roots ] );
      ( "minimize",
        [
          Alcotest.test_case "golden quadratic" `Quick test_golden_quadratic;
          Alcotest.test_case "multimodal" `Quick test_grid_then_golden_multimodal;
          Alcotest.test_case "grid2 bowl" `Quick test_grid2_bowl;
        ]
        @ qsuite [ prop_minimum_not_above_samples ] );
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "linear degenerate" `Quick test_linear_degenerate;
          Alcotest.test_case "nelder-mead" `Quick test_nelder_mead_quadratic;
        ]
        @ qsuite [ prop_linear_recovers_line ] );
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "relative error" `Quick test_relative_error;
        ] );
      ( "interp",
        [
          Alcotest.test_case "eval" `Quick test_interp_eval;
          Alcotest.test_case "argmin/map" `Quick test_interp_argmin_map;
          Alcotest.test_case "rejects unsorted" `Quick test_interp_rejects_unsorted;
        ] );
      ( "interval",
        [
          Alcotest.test_case "construction" `Quick test_interval_construction;
          Alcotest.test_case "signed-zero division" `Quick
            test_interval_signed_zero_division;
          Alcotest.test_case "division edges" `Quick test_interval_division_edges;
          Alcotest.test_case "exp/log edges" `Quick test_interval_exp_edges;
          Alcotest.test_case "zero-width ops" `Quick test_interval_zero_width_ops;
          Alcotest.test_case "set operations" `Quick test_interval_set_ops;
          Alcotest.test_case "affine basics" `Quick
            test_affine_const_and_interval_roundtrip;
          Alcotest.test_case "finite violations" `Quick
            test_interval_finite_violation;
        ]
        @ qsuite
            [
              prop_interval_arith_sound;
              prop_interval_div_sound;
              prop_interval_transcendental_sound;
              prop_affine_sound_and_tighter;
            ] );
      ( "edge-cases",
        [
          Alcotest.test_case "percentile validation" `Quick test_percentile_validation;
          Alcotest.test_case "relative error zero ref" `Quick
            test_relative_error_zero_reference;
          Alcotest.test_case "stddev degenerate" `Quick test_stddev_degenerate;
          Alcotest.test_case "nelder-mead scale" `Quick test_nelder_mead_with_scale;
          Alcotest.test_case "nelder-mead validation" `Quick
            test_nelder_mead_validation;
          Alcotest.test_case "interp of_function" `Quick test_interp_of_function_bounds;
          Alcotest.test_case "golden iterations" `Quick
            test_golden_section_iterations_bounded;
          Alcotest.test_case "grid validation" `Quick test_grid_then_golden_validation;
        ] );
    ]
