(* Unit and property tests for the numerics substrate. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* Rng *)

let test_rng_determinism () =
  let a = Numerics.Rng.create 123 and b = Numerics.Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Numerics.Rng.next_int64 a) (Numerics.Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Numerics.Rng.create 1 and b = Numerics.Rng.create 2 in
  Alcotest.(check bool)
    "different seeds diverge" false
    (Numerics.Rng.next_int64 a = Numerics.Rng.next_int64 b)

let test_rng_copy () =
  let a = Numerics.Rng.create 5 in
  ignore (Numerics.Rng.next_int64 a);
  let b = Numerics.Rng.copy a in
  Alcotest.(check int64)
    "copy continues identically" (Numerics.Rng.next_int64 a)
    (Numerics.Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Numerics.Rng.create 7 in
  let b = Numerics.Rng.split a in
  Alcotest.(check bool)
    "split stream differs" false
    (Numerics.Rng.next_int64 a = Numerics.Rng.next_int64 b)

let test_rng_int_bounds_raises () =
  let rng = Numerics.Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Numerics.Rng.int rng 0))

let test_rng_gaussian_moments () =
  let rng = Numerics.Rng.create 11 in
  let samples =
    List.init 20000 (fun _ -> Numerics.Rng.gaussian rng ~mu:2.0 ~sigma:0.5)
  in
  let summary = Numerics.Stats.summarize samples in
  check_close 0.02 "mean" 2.0 summary.mean;
  check_close 0.02 "stddev" 0.5 summary.stddev

let check_bits name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.17g = %.17g" name a b)
    true
    (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))

(* Regression for the Box-Muller second-draw cache: the gaussian stream is
   a deterministic function of the seed, two draws per transform. *)
let test_rng_gaussian_determinism () =
  let a = Numerics.Rng.create 123 and b = Numerics.Rng.create 123 in
  for i = 1 to 100 do
    (* Vary mu/sigma so cached unit normals are re-scaled per call. *)
    let mu = float_of_int (i mod 5) and sigma = 0.5 +. float_of_int (i mod 3) in
    check_bits "same gaussian stream"
      (Numerics.Rng.gaussian a ~mu ~sigma)
      (Numerics.Rng.gaussian b ~mu ~sigma)
  done

(* Reconstruct both branches of one transform from the raw uniforms: the
   first call returns the cosine branch, the second replays the cached
   sine branch under its own mu/sigma, and the third burns fresh
   uniforms. *)
let test_rng_gaussian_box_muller_pair () =
  let g = Numerics.Rng.create 77 in
  let u = Numerics.Rng.copy g in
  let g1 = Numerics.Rng.gaussian g ~mu:0.0 ~sigma:1.0 in
  let g2 = Numerics.Rng.gaussian g ~mu:3.0 ~sigma:2.0 in
  let u1 = Numerics.Rng.float u 1.0 in
  let u2 = Numerics.Rng.float u 1.0 in
  Alcotest.(check bool) "u1 nonzero" true (u1 > 0.0);
  let r = sqrt (-2.0 *. log u1) in
  let theta = 2.0 *. Float.pi *. u2 in
  check_bits "cosine branch" (0.0 +. (1.0 *. r *. cos theta)) g1;
  check_bits "cached sine branch" (3.0 +. (2.0 *. (r *. sin theta))) g2;
  let g3 = Numerics.Rng.gaussian g ~mu:0.0 ~sigma:1.0 in
  let u3 = Numerics.Rng.float u 1.0 in
  let u4 = Numerics.Rng.float u 1.0 in
  Alcotest.(check bool) "u3 nonzero" true (u3 > 0.0);
  let r' = sqrt (-2.0 *. log u3) in
  check_bits "third draw uses fresh uniforms"
    (0.0 +. (1.0 *. r' *. cos (2.0 *. Float.pi *. u4)))
    g3

let test_rng_gaussian_cache_across_copy_and_split () =
  (* A copy carries the pending sine branch... *)
  let a = Numerics.Rng.create 11 in
  ignore (Numerics.Rng.gaussian a ~mu:0.0 ~sigma:1.0);
  let c = Numerics.Rng.copy a in
  check_bits "copy replays pending branch"
    (Numerics.Rng.gaussian a ~mu:0.0 ~sigma:1.0)
    (Numerics.Rng.gaussian c ~mu:0.0 ~sigma:1.0);
  (* ...but a split child starts cache-free: parents with equal states and
     different pending caches produce identical children. *)
  let p1 = Numerics.Rng.create 11 in
  ignore (Numerics.Rng.gaussian p1 ~mu:0.0 ~sigma:1.0);
  let p2 = Numerics.Rng.create 11 in
  ignore (Numerics.Rng.float p2 1.0);
  ignore (Numerics.Rng.float p2 1.0);
  let c1 = Numerics.Rng.split p1 and c2 = Numerics.Rng.split p2 in
  check_bits "split discards pending branch"
    (Numerics.Rng.gaussian c1 ~mu:0.0 ~sigma:1.0)
    (Numerics.Rng.gaussian c2 ~mu:0.0 ~sigma:1.0)

let test_rng_split_nth () =
  let seq = Numerics.Rng.create 5 and indexed = Numerics.Rng.create 5 in
  let probe = Numerics.Rng.copy indexed in
  for n = 0 to 9 do
    let a = Numerics.Rng.split seq in
    let b = Numerics.Rng.split_nth indexed n in
    Alcotest.(check int64)
      (Printf.sprintf "split_nth %d = %dth sequential split" n n)
      (Numerics.Rng.next_int64 a) (Numerics.Rng.next_int64 b)
  done;
  (* split_nth never advances its argument. *)
  Alcotest.(check int64) "parent untouched"
    (Numerics.Rng.next_int64 probe)
    (Numerics.Rng.next_int64 indexed);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split_nth: negative index") (fun () ->
      ignore (Numerics.Rng.split_nth (Numerics.Rng.create 1) (-1)))

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Numerics.Rng.create seed in
      let v = Numerics.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_in_range =
  QCheck.Test.make ~name:"Rng.float stays in [0, bound)" ~count:500
    QCheck.(pair small_int pos_float)
    (fun (seed, bound) ->
      QCheck.assume (Float.is_finite bound && bound > 0.0);
      let rng = Numerics.Rng.create seed in
      let v = Numerics.Rng.float rng bound in
      v >= 0.0 && v < bound)

(* Kahan *)

let test_kahan_pathological () =
  (* 1e16 + 1.0 repeated: naive summation loses every unit. *)
  let acc = Numerics.Kahan.create () in
  Numerics.Kahan.add acc 1e16;
  for _ = 1 to 1000 do
    Numerics.Kahan.add acc 1.0
  done;
  Numerics.Kahan.add acc (-1e16);
  check_float "compensated" 1000.0 (Numerics.Kahan.sum acc)

let test_kahan_agreement () =
  let xs = List.init 100 (fun i -> float_of_int i *. 0.1) in
  check_close 1e-9 "sum_list = sum_array" (Numerics.Kahan.sum_list xs)
    (Numerics.Kahan.sum_array (Array.of_list xs));
  check_close 1e-9 "sum_by id" (Numerics.Kahan.sum_list xs)
    (Numerics.Kahan.sum_by Fun.id xs)

(* Rootfind *)

let test_bisect_sqrt2 () =
  let root = Numerics.Rootfind.bisect ~f:(fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_close 1e-9 "sqrt 2" (sqrt 2.0) root

let test_brent_cos () =
  let root = Numerics.Rootfind.brent ~f:(fun x -> cos x -. x) 0.0 1.0 in
  check_close 1e-9 "dottie number" 0.7390851332151607 root

let test_brent_linear () =
  let root = Numerics.Rootfind.brent ~f:(fun x -> (2.0 *. x) -. 3.0) 0.0 5.0 in
  check_close 1e-9 "linear root" 1.5 root

let test_no_bracket () =
  Alcotest.(check bool)
    "raises No_bracket" true
    (match Numerics.Rootfind.bisect ~f:(fun x -> (x *. x) +. 1.0) 0.0 1.0 with
    | _ -> false
    | exception Numerics.Rootfind.No_bracket _ -> true)

let test_newton_cbrt () =
  let root =
    Numerics.Rootfind.newton
      ~f:(fun x -> (x ** 3.0) -. 27.0)
      ~df:(fun x -> 3.0 *. x *. x)
      2.0
  in
  check_close 1e-9 "cbrt 27" 3.0 root

let test_newton_diverged_zero_derivative () =
  (* f has no root and a stationary start: the very first step dies, and
     the exception carries where and when. *)
  Alcotest.check_raises "zero derivative"
    (Numerics.Rootfind.Diverged
       { last = 0.0; iterations = 0; reason = "zero derivative" })
    (fun () ->
      ignore
        (Numerics.Rootfind.newton
           ~f:(fun x -> (x *. x) +. 1.0)
           ~df:(fun x -> 2.0 *. x)
           0.0))

let test_newton_diverged_non_finite () =
  (* A huge residual over a tiny slope overflows the step to infinity. *)
  Alcotest.check_raises "non-finite iterate"
    (Numerics.Rootfind.Diverged
       { last = 0.0; iterations = 0; reason = "non-finite iterate" })
    (fun () ->
      ignore
        (Numerics.Rootfind.newton
           ~f:(fun _ -> 1e300)
           ~df:(fun _ -> 1e-300)
           0.0))

let test_finite_guard () =
  let open Numerics.Finite in
  Alcotest.(check bool) "finite ok" true (violation 1.0 = None);
  Alcotest.(check bool) "nan" true (violation Float.nan = Some Nan);
  Alcotest.(check bool) "+inf" true (violation infinity = Some Pos_inf);
  Alcotest.(check bool) "-inf" true (violation neg_infinity = Some Neg_inf);
  check_close 1e-9 "clamp id" 3.5 (clamp 3.5);
  check_close 1.0 "clamp +inf" huge (clamp infinity);
  check_close 1.0 "clamp -inf" (-.huge) (clamp neg_infinity);
  check_close 1e-9 "clamp nan default" 0.0 (clamp Float.nan);
  check_close 1e-9 "clamp nan custom" 7.0 (clamp ~nan:7.0 Float.nan)

let test_expand_bracket () =
  match Numerics.Rootfind.expand_bracket ~f:(fun x -> x -. 10.0) 0.0 1.0 with
  | Some (lo, hi) ->
    Alcotest.(check bool) "brackets the root" true (lo <= 10.0 && hi >= 10.0)
  | None -> Alcotest.fail "expected a bracket"

let prop_brent_polynomial_roots =
  QCheck.Test.make ~name:"brent finds the root of (x - r)^3 + (x - r)"
    ~count:200
    QCheck.(float_range (-50.0) 50.0)
    (fun r ->
      let f x = ((x -. r) ** 3.0) +. (x -. r) in
      let root = Numerics.Rootfind.brent ~f (r -. 60.0) (r +. 60.0) in
      Float.abs (root -. r) < 1e-6)

(* Minimize *)

let test_golden_quadratic () =
  let r =
    Numerics.Minimize.golden_section
      ~f:(fun x -> (x -. Float.pi) ** 2.0)
      0.0 10.0
  in
  check_close 1e-6 "argmin" Float.pi r.x

let test_grid_then_golden_multimodal () =
  (* Two valleys; the global one is at ~7.1. *)
  let f x = ((x -. 7.0) ** 2.0) -. (2.0 *. Float.exp (-.((x -. 2.0) ** 2.0))) in
  let r = Numerics.Minimize.grid_then_golden ~samples:100 ~f 0.0 10.0 in
  check_close 0.01 "finds global valley" 7.0 r.x

let test_grid2_bowl () =
  let r =
    Numerics.Minimize.grid2
      ~f:(fun x y -> ((x -. 1.0) ** 2.0) +. ((y +. 2.0) ** 2.0))
      ~x0_range:(-5.0, 5.0) ~x1_range:(-5.0, 5.0) ~samples:101
  in
  check_close 0.11 "x0" 1.0 r.x0;
  check_close 0.11 "x1" (-2.0) r.x1

let prop_minimum_not_above_samples =
  QCheck.Test.make ~name:"grid_then_golden <= coarse samples" ~count:100
    QCheck.(pair (float_range (-3.0) 3.0) (float_range 0.2 4.0))
    (fun (center, width) ->
      let f x = Float.abs ((x -. center) /. width) ** 1.5 in
      let r = Numerics.Minimize.grid_then_golden ~samples:32 ~f (-5.0) 5.0 in
      (* Compare against an independent coarse scan. *)
      let coarse =
        List.init 50 (fun i -> f (-5.0 +. (float_of_int i *. 10.0 /. 49.0)))
      in
      List.for_all (fun v -> r.fx <= v +. 1e-12) coarse)

(* Fit *)

let test_linear_exact () =
  let pts = List.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) -. 1.0)) in
  let line = Numerics.Fit.linear pts in
  check_close 1e-9 "slope" 2.5 line.slope;
  check_close 1e-9 "intercept" (-1.0) line.intercept;
  check_close 1e-9 "r2" 1.0 line.r_squared;
  check_close 1e-9 "max residual" 0.0 line.max_residual

let test_linear_degenerate () =
  Alcotest.(check bool)
    "single point rejected" true
    (match Numerics.Fit.linear [ (1.0, 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_nelder_mead_quadratic () =
  let f v = ((v.(0) -. 3.0) ** 2.0) +. ((v.(1) +. 1.0) ** 2.0) in
  let best, value = Numerics.Fit.nelder_mead ~f [| 0.0; 0.0 |] in
  check_close 1e-4 "x" 3.0 best.(0);
  check_close 1e-4 "y" (-1.0) best.(1);
  check_close 1e-6 "min" 0.0 value

let prop_linear_recovers_line =
  QCheck.Test.make ~name:"linear fit recovers exact lines" ~count:200
    QCheck.(pair (float_range (-10.0) 10.0) (float_range (-10.0) 10.0))
    (fun (slope, intercept) ->
      let pts =
        List.init 8 (fun i ->
            let x = float_of_int i in
            (x, (slope *. x) +. intercept))
      in
      let line = Numerics.Fit.linear pts in
      Float.abs (line.slope -. slope) < 1e-6
      && Float.abs (line.intercept -. intercept) < 1e-6)

(* Stats *)

let test_summarize () =
  let s = Numerics.Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.count;
  check_float "mean" 2.5 s.mean;
  check_float "min" 1.0 s.min_value;
  check_float "max" 4.0 s.max_value;
  check_close 1e-9 "stddev" (sqrt (5.0 /. 3.0)) s.stddev

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Numerics.Stats.percentile xs 0.0);
  check_float "p100" 40.0 (Numerics.Stats.percentile xs 100.0);
  check_float "p50" 25.0 (Numerics.Stats.percentile xs 50.0)

let test_relative_error () =
  check_float "signed" (-0.1) (Numerics.Stats.relative_error ~reference:10.0 9.0);
  check_float "max abs" 0.2
    (Numerics.Stats.max_abs_relative_error [ (10.0, 9.0); (10.0, 12.0) ])

(* Interp *)

let test_interp_eval () =
  let t = Numerics.Interp.of_points [ (0.0, 0.0); (1.0, 10.0); (2.0, 0.0) ] in
  check_float "node" 10.0 (Numerics.Interp.eval t 1.0);
  check_float "midpoint" 5.0 (Numerics.Interp.eval t 0.5);
  check_float "extrapolation" (-10.0) (Numerics.Interp.eval t 3.0)

let test_interp_argmin_map () =
  let t = Numerics.Interp.of_function ~f:(fun x -> (x -. 1.0) ** 2.0) ~lo:0.0 ~hi:2.0 ~samples:21 in
  let x, y = Numerics.Interp.argmin t in
  check_close 1e-9 "argmin x" 1.0 x;
  check_close 1e-9 "argmin y" 0.0 y;
  let t2 = Numerics.Interp.map_y (fun y -> y +. 1.0) t in
  check_close 1e-9 "map_y" 1.0 (snd (Numerics.Interp.argmin t2))

let test_interp_rejects_unsorted () =
  Alcotest.(check bool)
    "unsorted rejected" true
    (match Numerics.Interp.of_points [ (1.0, 0.0); (0.5, 1.0) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Extra edge cases across the numerics substrate. *)

let test_percentile_validation () =
  Alcotest.(check bool)
    "p out of range" true
    (match Numerics.Stats.percentile [ 1.0 ] 120.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "empty rejected" true
    (match Numerics.Stats.percentile [] 50.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_relative_error_zero_reference () =
  Alcotest.(check bool)
    "zero reference rejected" true
    (match Numerics.Stats.relative_error ~reference:0.0 1.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_stddev_degenerate () =
  check_float "single sample" 0.0 (Numerics.Stats.stddev [ 5.0 ]);
  check_float "empty" 0.0 (Numerics.Stats.stddev [])

let test_nelder_mead_with_scale () =
  let f v = Float.abs (v.(0) -. 100.0) in
  let best, _ =
    Numerics.Fit.nelder_mead ~scale:[| 50.0 |] ~f [| 0.0 |]
  in
  check_close 0.01 "large scale reaches far minima" 100.0 best.(0)

let test_nelder_mead_validation () =
  Alcotest.(check bool)
    "empty start rejected" true
    (match Numerics.Fit.nelder_mead ~f:(fun _ -> 0.0) [||] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "scale length mismatch rejected" true
    (match
       Numerics.Fit.nelder_mead ~scale:[| 1.0; 2.0 |]
         ~f:(fun v -> v.(0))
         [| 0.0 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_interp_of_function_bounds () =
  let t = Numerics.Interp.of_function ~f:sin ~lo:0.0 ~hi:1.0 ~samples:11 in
  let lo, hi = Numerics.Interp.domain t in
  check_float "lo" 0.0 lo;
  check_float "hi" 1.0 hi;
  Alcotest.(check int) "points" 11 (List.length (Numerics.Interp.points t))

let test_golden_section_iterations_bounded () =
  let r =
    Numerics.Minimize.golden_section ~max_iter:10 ~f:(fun x -> x *. x)
      (-100.0) 100.0
  in
  Alcotest.(check bool) "iterations capped" true (r.iterations <= 10)

let test_grid_then_golden_validation () =
  Alcotest.(check bool)
    "samples < 3 rejected" true
    (match
       Numerics.Minimize.grid_then_golden ~samples:2 ~f:(fun x -> x) 0.0 1.0
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "numerics"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bound validation" `Quick test_rng_int_bounds_raises;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "gaussian determinism" `Quick
            test_rng_gaussian_determinism;
          Alcotest.test_case "gaussian box-muller pairing" `Quick
            test_rng_gaussian_box_muller_pair;
          Alcotest.test_case "gaussian cache vs copy/split" `Quick
            test_rng_gaussian_cache_across_copy_and_split;
          Alcotest.test_case "split_nth" `Quick test_rng_split_nth;
        ]
        @ qsuite [ prop_rng_int_in_range; prop_rng_float_in_range ] );
      ( "kahan",
        [
          Alcotest.test_case "pathological series" `Quick test_kahan_pathological;
          Alcotest.test_case "api agreement" `Quick test_kahan_agreement;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
          Alcotest.test_case "brent cos" `Quick test_brent_cos;
          Alcotest.test_case "brent linear" `Quick test_brent_linear;
          Alcotest.test_case "no bracket" `Quick test_no_bracket;
          Alcotest.test_case "newton cbrt" `Quick test_newton_cbrt;
          Alcotest.test_case "newton diverged: zero derivative" `Quick
            test_newton_diverged_zero_derivative;
          Alcotest.test_case "newton diverged: non-finite" `Quick
            test_newton_diverged_non_finite;
          Alcotest.test_case "finite guard" `Quick test_finite_guard;
          Alcotest.test_case "expand bracket" `Quick test_expand_bracket;
        ]
        @ qsuite [ prop_brent_polynomial_roots ] );
      ( "minimize",
        [
          Alcotest.test_case "golden quadratic" `Quick test_golden_quadratic;
          Alcotest.test_case "multimodal" `Quick test_grid_then_golden_multimodal;
          Alcotest.test_case "grid2 bowl" `Quick test_grid2_bowl;
        ]
        @ qsuite [ prop_minimum_not_above_samples ] );
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "linear degenerate" `Quick test_linear_degenerate;
          Alcotest.test_case "nelder-mead" `Quick test_nelder_mead_quadratic;
        ]
        @ qsuite [ prop_linear_recovers_line ] );
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "relative error" `Quick test_relative_error;
        ] );
      ( "interp",
        [
          Alcotest.test_case "eval" `Quick test_interp_eval;
          Alcotest.test_case "argmin/map" `Quick test_interp_argmin_map;
          Alcotest.test_case "rejects unsorted" `Quick test_interp_rejects_unsorted;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "percentile validation" `Quick test_percentile_validation;
          Alcotest.test_case "relative error zero ref" `Quick
            test_relative_error_zero_reference;
          Alcotest.test_case "stddev degenerate" `Quick test_stddev_degenerate;
          Alcotest.test_case "nelder-mead scale" `Quick test_nelder_mead_with_scale;
          Alcotest.test_case "nelder-mead validation" `Quick
            test_nelder_mead_validation;
          Alcotest.test_case "interp of_function" `Quick test_interp_of_function_bounds;
          Alcotest.test_case "golden iterations" `Quick
            test_golden_section_iterations_bounded;
          Alcotest.test_case "grid validation" `Quick test_grid_then_golden_validation;
        ] );
    ]
