(* Property-based hardening of the paper's core model. Each invariant runs
   over >= 200 randomized valid cases generated from a fixed seed with
   [Numerics.Rng] (SplitMix64), so a failure reproduces exactly; all model
   evaluations are pure and pool-size independent, so the suite passes at
   any OPTPOWER_JOBS. *)

module P = Power_core.Paper_data
module Pl = Power_core.Power_law

let cases_per_invariant = 200
let max_draws = 20_000

let base_rows = Array.of_list P.table1

let tech_of_int = function
  | 0 -> Device.Technology.ll
  | 1 -> Device.Technology.ull
  | _ -> Device.Technology.hs

let log_uniform rng lo hi =
  lo *. Float.exp (Numerics.Rng.float rng (Float.log (hi /. lo)))

(* A random but physically shaped problem: per-cell capacitance and leakage
   calibrated from a random published row, then the architectural knobs the
   paper varies — activity a, size N, logical depth LD, frequency f and the
   technology flavor — redrawn over generous ranges. *)
let random_problem rng =
  let tech = tech_of_int (Numerics.Rng.int rng 3) in
  let row = base_rows.(Numerics.Rng.int rng (Array.length base_rows)) in
  let params =
    Power_core.Calibration.params_of_row Device.Technology.ll ~f:P.frequency
      row
  in
  let params =
    {
      params with
      Power_core.Arch_params.activity = log_uniform rng 0.005 0.6;
      n_cells = float_of_int (64 + Numerics.Rng.int rng 8000);
      ld_eff = 8.0 +. Numerics.Rng.float rng 72.0;
    }
  in
  Pl.make tech params ~f:(log_uniform rng 2e6 2e8)

(* Draw problems until [n] satisfy [valid], failing loudly if the generator
   ranges ever drift so far that valid cases become rare. *)
let valid_cases ~seed ~valid n =
  let rng = Numerics.Rng.create seed in
  let rec go acc found drawn =
    if found >= n then List.rev acc
    else if drawn >= max_draws then
      Alcotest.failf "only %d/%d valid cases in %d draws" found n max_draws
    else begin
      let problem = random_problem rng in
      match valid problem with
      | Some case -> go (case :: acc) (found + 1) (drawn + 1)
      | None -> go acc found (drawn + 1)
    end
  in
  go [] 0 0

(* Invariant 1: inside its validity region the closed form Eq. 13 tracks
   the numerical optimum to better than 3 % — the paper's headline accuracy
   claim. Validity means the optimum sits in the {e interior} of the Eq. 7
   linearisation range (0.3–1.0 V with a 0.1 V margin): the fit error of
   Vdd^(1/α) ≈ A·Vdd + B peaks at the interval ends, and sweeping the
   generator shows the 3 % bound holding exactly there — errors reach ~6 %
   within 0.05 V of either edge and stay below ~2.4 % in the interior. *)
let test_eq13_tracks_numerical () =
  let lin_lo, lin_hi = (0.4, 0.9) in
  let valid problem =
    match Power_core.Closed_form.evaluate problem with
    | exception Power_core.Closed_form.Infeasible _ -> None
    | cf ->
        let num = Power_core.Numerical_opt.optimum problem in
        if
          cf.vdd_opt >= lin_lo && cf.vdd_opt <= lin_hi
          && num.Pl.vdd >= lin_lo && num.Pl.vdd <= lin_hi
        then Some (problem, cf, num)
        else None
  in
  let cases = valid_cases ~seed:20060301 ~valid cases_per_invariant in
  List.iter
    (fun ((problem : Pl.problem), (cf : Power_core.Closed_form.result), num) ->
      let err =
        Float.abs (cf.ptot -. num.Pl.total) /. num.Pl.total *. 100.0
      in
      if err >= 3.0 then
        Alcotest.failf
          "eq13 off by %.2f%% (tech %s, a=%.4f, N=%.0f, LD=%.1f, f=%.3g, \
           vdd*=%.3f)"
          err
          (Device.Technology.name problem.tech)
          problem.params.activity problem.params.n_cells
          problem.params.ld_eff problem.f num.Pl.vdd)
    cases

(* Invariant 2: the numerical optimum is a true local minimum of the
   on-locus power — perturbing Vdd (and with it the constrained Vth) in
   either direction never lowers Ptot. *)
let test_optimum_is_local_min () =
  let valid problem =
    let num = Power_core.Numerical_opt.optimum problem in
    if Float.is_finite num.Pl.total && num.Pl.vdd > 0.06 then
      Some (problem, num)
    else None
  in
  let cases = valid_cases ~seed:20060302 ~valid cases_per_invariant in
  List.iter
    (fun (problem, (num : Pl.breakdown)) ->
      List.iter
        (fun factor ->
          let perturbed = (Pl.at problem ~vdd:(num.vdd *. factor)).total in
          (* Allow the solver's own convergence slack. *)
          if perturbed < num.total *. (1.0 -. 1e-7) then
            Alcotest.failf
              "Ptot(%.4f*vdd*) = %.6g below optimum %.6g (vdd*=%.4f)" factor
              perturbed num.total num.vdd)
        [ 0.98; 1.02 ])
    cases

(* Invariant 3: the breakdown is exactly additive, on the locus and off it:
   Ptot = Pdyn + Pstat to 1e-9 relative, and the breakdown components agree
   with the standalone pdyn/pstat evaluations. *)
let test_breakdown_additive () =
  let valid problem = Some problem in
  let cases = valid_cases ~seed:20060303 ~valid cases_per_invariant in
  let rng = Numerics.Rng.create 20060304 in
  let check_breakdown problem (b : Pl.breakdown) =
    let rel = Float.abs (b.total -. (b.dynamic +. b.static)) in
    if rel > 1e-9 *. Float.max 1e-30 (Float.abs b.total) then
      Alcotest.failf "total %.17g <> dyn %.17g + stat %.17g" b.total b.dynamic
        b.static;
    let pdyn = Pl.pdyn problem ~vdd:b.vdd in
    let pstat = Pl.pstat problem ~vdd:b.vdd ~vth:b.vth in
    Alcotest.(check (float 1e-12)) "pdyn matches" 1.0 (pdyn /. b.dynamic);
    Alcotest.(check (float 1e-12)) "pstat matches" 1.0 (pstat /. b.static)
  in
  List.iter
    (fun (problem : Pl.problem) ->
      let vdd = 0.1 +. Numerics.Rng.float rng 1.9 in
      check_breakdown problem (Pl.at problem ~vdd);
      let vth = -0.1 +. Numerics.Rng.float rng 0.7 in
      check_breakdown problem (Pl.at_free problem ~vdd ~vth))
    cases

let () =
  Alcotest.run "properties"
    [
      ( "model",
        [
          Alcotest.test_case "eq13 within 3% of numerical optimum" `Slow
            test_eq13_tracks_numerical;
          Alcotest.test_case "numerical optimum is a local minimum" `Slow
            test_optimum_is_local_min;
          Alcotest.test_case "Ptot = Pdyn + Pstat (1e-9 relative)" `Quick
            test_breakdown_additive;
        ] );
    ]
