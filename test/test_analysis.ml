(* Static-analysis engine: one broken fixture per netlist rule (each
   triggering its rule exactly once), one out-of-region input per model
   rule, renderer shape checks, and the diagnostic ordering contract. *)

module C = Netlist.Circuit
module Cell = Netlist.Cell
module D = Analysis.Diagnostic
module T = Device.Technology

let lint = Analysis.Engine.lint_circuit

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  ln = 0 || go 0

let count_rule rule diags =
  List.length (List.filter (fun (d : D.t) -> d.rule = rule) diags)

let find_rule rule diags = List.find (fun (d : D.t) -> d.rule = rule) diags

let check_fires ?(expect = 1) rule diags =
  Alcotest.(check int) (rule ^ " fires") expect (count_rule rule diags)

(* --- Rule registry --- *)

let test_registry_complete () =
  Alcotest.(check int) "netlist rules" 9 (List.length Analysis.Rule.netlist);
  Alcotest.(check int) "model rules" 9 (List.length Analysis.Rule.model);
  Alcotest.(check int) "cert rules" 6 (List.length Analysis.Rule.cert);
  let ids = List.map (fun (m : Analysis.Rule.meta) -> m.id) Analysis.Rule.all in
  Alcotest.(check int)
    "ids unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      let m = Analysis.Rule.find id in
      Alcotest.(check string) "find roundtrip" id m.Analysis.Rule.id)
    ids

(* --- Netlist-rule fixtures --- *)

let test_clean_circuit () =
  let c = C.create "clean" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y";
  Alcotest.(check int) "no diagnostics" 0 (List.length (lint c))

let test_undriven () =
  let c = C.create "fix_undriven" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  C.mark_output c y "y";
  let floating = C.fresh_net c "floating" in
  (match C.driver c y with
  | Some (id, _) -> C.rewire_input c id 0 floating
  | None -> assert false);
  let diags = lint c in
  check_fires "net.undriven" diags;
  let d = find_rule "net.undriven" diags in
  Alcotest.(check bool) "is error" true (d.severity = D.Error);
  Alcotest.(check bool)
    "names the net" true
    (String.length d.message > 0
    && String.ends_with ~suffix:"has no driver" d.message)

let test_comb_cycle () =
  let c = C.create "fix_cycle" in
  let a = C.add_input c "a" in
  let y1 = C.add_gate c Cell.Inv [| a |] in
  let y2 = C.add_gate c Cell.Inv [| y1 |] in
  C.mark_output c y2 "y";
  (match C.driver c y1 with
  | Some (id, _) -> C.rewire_input c id 0 y2
  | None -> assert false);
  let diags = lint c in
  check_fires "net.comb-cycle" diags;
  Alcotest.(check bool)
    "is error" true
    ((find_rule "net.comb-cycle" diags).severity = D.Error);
  (* Timing-based rules must skip a cyclic circuit, not raise. *)
  check_fires ~expect:0 "net.unbalanced-pipeline" diags

let test_dangling_and_dead () =
  let c = C.create "fix_dead" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y";
  ignore (C.add_gate c Cell.And2 [| a; a |]);
  let diags = lint c in
  check_fires "net.dangling-output" diags;
  check_fires "net.dead-logic" diags;
  Alcotest.(check bool)
    "dangling non-tie is a warning" true
    ((find_rule "net.dangling-output" diags).severity = D.Warning)

let test_dangling_tie_is_info () =
  let c = C.create "fix_tie" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y";
  ignore (C.tie0 c);
  let diags = lint c in
  check_fires "net.dangling-output" diags;
  Alcotest.(check bool)
    "unread tie demoted to info" true
    ((find_rule "net.dangling-output" diags).severity = D.Info);
  (* A tie is a constant, not logic: the dead-logic rule stays silent. *)
  check_fires ~expect:0 "net.dead-logic" diags

let test_const_fold () =
  let c = C.create "fix_const" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.And2 [| a; C.tie1 c |]) "y";
  let diags = lint c in
  check_fires "net.const-fold" diags;
  Alcotest.(check bool)
    "names the constant slot" true
    (String.ends_with ~suffix:"input 1 = 1"
       (find_rule "net.const-fold" diags).message)

let test_duplicate_cell () =
  let c = C.create "fix_dup" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  C.mark_output c (C.add_gate c Cell.Xor2 [| a; b |]) "y0";
  C.mark_output c (C.add_gate c Cell.Xor2 [| a; b |]) "y1";
  let diags = lint c in
  check_fires "net.duplicate-cell" diags;
  Alcotest.(check bool)
    "is info" true
    ((find_rule "net.duplicate-cell" diags).severity = D.Info)

let test_fanout_budget () =
  let c = C.create "fix_fanout" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  let y = C.add_gate c Cell.Xor2 [| a; b |] in
  for i = 0 to 32 do
    C.mark_output c (C.add_gate c Cell.Inv [| y |]) (Printf.sprintf "o%d" i)
  done;
  let diags = lint c in
  check_fires "net.fanout-budget" diags

let test_unused_input () =
  let c = C.create "fix_unused" in
  let a = C.add_input c "a" in
  let _b = C.add_input c "b" in
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y";
  let diags = lint c in
  check_fires "net.unused-input" diags

let test_unbalanced_pipeline () =
  (* One AND gate with a 30-inverter chain on one input and the raw input
     on the other: per-gate input skew ~ the whole logical depth. *)
  let c = C.create "fix_skew" in
  let a = C.add_input c "a" in
  let n = ref a in
  for _ = 1 to 30 do
    n := C.add_gate c Cell.Inv [| !n |]
  done;
  C.mark_output c (C.add_gate c Cell.And2 [| a; !n |]) "y";
  let diags = lint c in
  check_fires "net.unbalanced-pipeline" diags

(* --- Model-rule fixtures --- *)

let custom label tech = { tech with T.flavor = T.Custom label }

let test_tech_range () =
  let diags = Analysis.Model_rules.technology (custom "neg-io" { T.ll with T.io = 0.0 }) in
  check_fires "model.tech-range" diags;
  let diags =
    Analysis.Model_rules.technology
      (custom "inverted" { T.ll with T.vth0_nom = 1.5 })
  in
  check_fires "model.tech-range" diags;
  Alcotest.(check int) "clean tech" 0
    (List.length (Analysis.Model_rules.technology T.ll))

let test_alpha_range () =
  let diags =
    Analysis.Model_rules.technology (custom "sq" { T.ll with T.alpha = 2.5 })
  in
  check_fires "model.alpha-range" diags

let test_slope_range () =
  let diags =
    Analysis.Model_rules.technology (custom "slope" { T.ll with T.n = 2.5 })
  in
  check_fires "model.slope-range" diags

let test_calibration_range () =
  let row = Power_core.Paper_data.table1_find "RCA" in
  Alcotest.(check int) "published row clean" 0
    (List.length (Analysis.Model_rules.calibration_row row));
  let bad = { row with Power_core.Paper_data.activity = 9.0 } in
  check_fires "model.calibration-range"
    (Analysis.Model_rules.calibration_row bad);
  (* A unit slip on one component breaks the published power split. *)
  let slipped = { row with Power_core.Paper_data.pdyn = row.pdyn *. 1e6 } in
  Alcotest.(check bool) "balance check fires" true
    (count_rule "model.calibration-range"
       (Analysis.Model_rules.calibration_row slipped)
    >= 1)

let fixture_params =
  {
    Power_core.Arch_params.label = "fixture";
    n_cells = 1000.0;
    activity = 2.0;
    avg_cap = 5e-15;
    io_cell = 2e-9;
    ld_eff = 60.0;
    area = 1.0;
  }

let fixture_problem ?(tech = T.ll) ?(params = fixture_params) chi_prime =
  {
    Power_core.Power_law.tech;
    params;
    f = Power_core.Paper_data.frequency;
    chi_prime;
  }

let test_eq13_domain () =
  (* chi' so large that chi * A >= 1: the Eq. 9 logarithm has no domain. *)
  let diags =
    Analysis.Model_rules.optimisation ~label:"fix" (fixture_problem 100.0)
  in
  check_fires "model.eq13-domain" diags;
  Alcotest.(check bool) "is error" true
    ((find_rule "model.eq13-domain" diags).severity = D.Error)

let test_sweep_bracket () =
  (* Exactly zero dynamic power (any nonzero a*C*f*Vdd^2 term buys an
     interior minimum eventually) and a tiny chi': the total is static
     power alone, strictly falling with Vdd, so the numerical optimum
     pins at the top of the sweep. *)
  let params =
    { fixture_params with Power_core.Arch_params.activity = 0.0; avg_cap = 0.0 }
  in
  let diags =
    Analysis.Model_rules.optimisation ~label:"fix"
      (fixture_problem ~params 1e-6)
  in
  check_fires "model.sweep-bracket" diags

let test_alpha_power_region () =
  (* The paper's own most-parallel Wallace design optimises below the
     strong-inversion floor on LL - a warning, not an error. *)
  let row = Power_core.Paper_data.table1_find "Wallace par4" in
  let problem =
    Power_core.Calibration.problem_of_row T.ll
      ~f:Power_core.Paper_data.frequency row
  in
  let diags =
    Analysis.Model_rules.optimisation ~label:"LL/Wallace par4" problem
  in
  check_fires "model.alpha-power-region" diags;
  Alcotest.(check bool) "is warning" true
    ((find_rule "model.alpha-power-region" diags).severity = D.Warning);
  (* chi' = 0 puts the whole locus at Vth = Vdd: zero overdrive, error. *)
  let diags = Analysis.Model_rules.optimisation ~label:"fix" (fixture_problem 0.0) in
  Alcotest.(check bool) "zero overdrive is an error" true
    (count_rule "model.alpha-power-region" diags >= 1
    && (find_rule "model.alpha-power-region" diags).severity = D.Error)

let test_finite_audit () =
  let params = { fixture_params with Power_core.Arch_params.io_cell = Float.nan } in
  let diags =
    Analysis.Model_rules.optimisation ~label:"fix"
      (fixture_problem ~params 0.15)
  in
  Alcotest.(check bool) "NaN leak caught" true
    (count_rule "model.finite" diags >= 1)

let test_newton_divergence () =
  (* A huge chi' bends the Eq. 5 locus so steeply that Newton from
     Vdd_nom overshoots into v < 0, where the fractional power is NaN. *)
  let diags =
    Analysis.Model_rules.optimisation ~label:"fix" (fixture_problem 100.0)
  in
  check_fires "model.newton-divergence" diags;
  let d = find_rule "model.newton-divergence" diags in
  Alcotest.(check bool) "reports the reason" true (contains d.message "diverged")

(* --- Engine and renderers --- *)

let sample_report () =
  let c = C.create "sample" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.And2 [| a; C.tie1 c |]) "y";
  ignore (C.tie0 c);
  Analysis.Engine.of_targets
    [ { Analysis.Engine.title = "netlist sample"; diagnostics = lint c } ]

let test_engine_counts () =
  let report = sample_report () in
  Alcotest.(check int) "errors" 0 report.Analysis.Engine.errors;
  Alcotest.(check int) "warnings" 1 report.Analysis.Engine.warnings;
  Alcotest.(check int) "infos" 1 report.Analysis.Engine.infos;
  Alcotest.(check int) "exit 1 on warnings" 1
    (Analysis.Engine.exit_code report)

let test_render_text () =
  let s = Analysis.Render.text (sample_report ()) in
  Alcotest.(check bool) "has header" true (contains s "== netlist sample");
  Alcotest.(check bool) "has rule id" true (contains s "net.const-fold");
  Alcotest.(check bool) "has summary" true
    (contains s "lint: 1 target, 0 errors, 1 warning, 1 info")

let test_render_json () =
  let s = Analysis.Render.json (sample_report ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true (contains s needle))
    [
      "\"targets\"";
      "\"summary\"";
      "\"rule\": \"net.const-fold\"";
      "\"severity\": \"warning\"";
      "\"exitCode\": 1";
    ]

let test_render_sarif () =
  let s = Analysis.Render.sarif ~run_id:"test-run" (sample_report ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("sarif has " ^ needle) true (contains s needle))
    [
      "\"version\": \"2.1.0\"";
      "\"id\": \"test-run\"";
      "\"id\": \"net.const-fold\"";
      "logicalLocations";
      "\"level\": \"note\"";
      "\"level\": \"warning\"";
      "ruleIndex";
      "\"helpUri\"";
      "DESIGN.md#rule-net-const-fold";
      "\"partialFingerprints\"";
      "\"optpowerDiagnostic/v1\"";
      "\"category\": \"net\"";
    ];
  (* Every registered rule is published in tool.driver.rules. *)
  List.iter
    (fun (m : Analysis.Rule.meta) ->
      Alcotest.(check bool) ("sarif declares " ^ m.id) true
        (contains s (Printf.sprintf "\"id\": %S" m.id)))
    Analysis.Rule.all

let test_merge_dedupe () =
  let d rule msg =
    D.make ~rule ~severity:D.Warning
      ~location:(D.Circuit_loc { circuit = "c"; cell = None; net = None })
      msg
  in
  let t diags = { Analysis.Engine.title = "netlist c"; diagnostics = diags } in
  (* Same target visited by two drivers, one finding repeated verbatim. *)
  let report =
    Analysis.Engine.of_targets
      [
        t [ d "net.dead-logic" "m1"; d "net.const-fold" "m2" ];
        t [ d "net.dead-logic" "m1"; d "net.dead-logic" "m3" ];
      ]
  in
  Alcotest.(check int) "merged to one target" 1
    (List.length report.Analysis.Engine.targets);
  let merged = List.hd report.Analysis.Engine.targets in
  Alcotest.(check int) "duplicate fingerprint dropped" 3
    (List.length merged.Analysis.Engine.diagnostics);
  Alcotest.(check int) "counts follow dedupe" 3 report.Analysis.Engine.warnings;
  (* Fingerprints are stable across construction and ignore the hint. *)
  let a = d "net.dead-logic" "m1" in
  let b =
    D.make ~rule:"net.dead-logic" ~severity:D.Warning
      ~location:(D.Circuit_loc { circuit = "c"; cell = None; net = None })
      ~fix_hint:"different hint" "m1"
  in
  Alcotest.(check string) "fingerprint ignores fix_hint" (D.fingerprint a)
    (D.fingerprint b)

let test_filter_rules () =
  let report = sample_report () in
  let only = Analysis.Engine.filter_rules [ "net.const-fold" ] report in
  Alcotest.(check int) "targets survive" 1
    (List.length only.Analysis.Engine.targets);
  Alcotest.(check int) "one warning kept" 1 only.Analysis.Engine.warnings;
  Alcotest.(check int) "info filtered out" 0 only.Analysis.Engine.infos;
  Alcotest.(check int) "exit recomputed" 1 (Analysis.Engine.exit_code only);
  let none = Analysis.Engine.filter_rules [ "net.undriven" ] report in
  Alcotest.(check int) "empty filter is clean" 0
    (Analysis.Engine.exit_code none)

let test_json_escaping () =
  let d =
    D.make ~rule:"net.undriven" ~severity:D.Error
      ~location:(D.Circuit_loc { circuit = "c\"q"; cell = None; net = None })
      "quote \" backslash \\ newline \n tab \t"
  in
  let report =
    Analysis.Engine.of_targets
      [ { Analysis.Engine.title = "t"; diagnostics = [ d ] } ]
  in
  let s = Analysis.Render.json report in
  Alcotest.(check bool) "escaped quote" true (contains s "c\\\"q");
  Alcotest.(check bool) "escaped newline" true (contains s "\\n");
  Alcotest.(check bool) "escaped tab" true (contains s "\\t")

let test_diagnostic_order () =
  let mk rule severity circuit =
    D.make ~rule ~severity
      ~location:(D.Circuit_loc { circuit; cell = None; net = None })
      "m"
  in
  let a = mk "net.undriven" D.Error "a" in
  let b = mk "net.dead-logic" D.Warning "a" in
  let c = mk "net.undriven" D.Error "b" in
  let sorted = List.sort D.compare [ c; b; a ] in
  Alcotest.(check bool) "same location: errors first" true
    (List.nth sorted 0 = a && List.nth sorted 1 = b && List.nth sorted 2 = c);
  (let e, w, i = D.count [ a; b; c ] in
   Alcotest.(check (triple int int int)) "count" (2, 1, 0) (e, w, i));
  Alcotest.(check int) "worst exit" 2 (D.worst_exit_code [ b; a ]);
  Alcotest.(check int) "warning exit" 1 (D.worst_exit_code [ b ]);
  Alcotest.(check int) "clean exit" 0 (D.worst_exit_code [])

let () =
  Alcotest.run "analysis"
    [
      ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete ] );
      ( "netlist-rules",
        [
          Alcotest.test_case "clean circuit" `Quick test_clean_circuit;
          Alcotest.test_case "undriven" `Quick test_undriven;
          Alcotest.test_case "comb-cycle" `Quick test_comb_cycle;
          Alcotest.test_case "dangling+dead" `Quick test_dangling_and_dead;
          Alcotest.test_case "tie dangling is info" `Quick
            test_dangling_tie_is_info;
          Alcotest.test_case "const-fold" `Quick test_const_fold;
          Alcotest.test_case "duplicate-cell" `Quick test_duplicate_cell;
          Alcotest.test_case "fanout-budget" `Quick test_fanout_budget;
          Alcotest.test_case "unused-input" `Quick test_unused_input;
          Alcotest.test_case "unbalanced-pipeline" `Quick
            test_unbalanced_pipeline;
        ] );
      ( "model-rules",
        [
          Alcotest.test_case "tech-range" `Quick test_tech_range;
          Alcotest.test_case "alpha-range" `Quick test_alpha_range;
          Alcotest.test_case "slope-range" `Quick test_slope_range;
          Alcotest.test_case "calibration-range" `Quick test_calibration_range;
          Alcotest.test_case "eq13-domain" `Quick test_eq13_domain;
          Alcotest.test_case "sweep-bracket" `Quick test_sweep_bracket;
          Alcotest.test_case "alpha-power-region" `Quick
            test_alpha_power_region;
          Alcotest.test_case "finite audit" `Quick test_finite_audit;
          Alcotest.test_case "newton-divergence" `Quick test_newton_divergence;
        ] );
      ( "engine+render",
        [
          Alcotest.test_case "counts and exit code" `Quick test_engine_counts;
          Alcotest.test_case "text" `Quick test_render_text;
          Alcotest.test_case "json" `Quick test_render_json;
          Alcotest.test_case "sarif" `Quick test_render_sarif;
          Alcotest.test_case "merge+dedupe" `Quick test_merge_dedupe;
          Alcotest.test_case "filter rules" `Quick test_filter_rules;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "diagnostic order" `Quick test_diagnostic_order;
        ] );
    ]
