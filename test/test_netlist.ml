(* Netlist substrate: three-valued logic, the cell library, the circuit
   builder, structural checks and static timing analysis. *)

module C = Netlist.Circuit
module Cell = Netlist.Cell
module Logic = Netlist.Logic

let check_close eps = Alcotest.(check (float eps))

let value_t =
  Alcotest.testable
    (fun ppf v -> Netlist.Logic.pp ppf v)
    Netlist.Logic.equal

(* Logic *)

let all_values = [ Logic.Zero; Logic.One; Logic.X ]

let test_logic_bool_roundtrip () =
  Alcotest.(check (option bool)) "zero" (Some false) (Logic.to_bool Logic.Zero);
  Alcotest.(check (option bool)) "one" (Some true) (Logic.to_bool Logic.One);
  Alcotest.(check (option bool)) "x" None (Logic.to_bool Logic.X);
  Alcotest.check value_t "of_bool true" Logic.One (Logic.of_bool true);
  Alcotest.check value_t "of_bool false" Logic.Zero (Logic.of_bool false)

let test_logic_gates_on_booleans () =
  (* On known values the gates agree with Bool. *)
  let known = [ (Logic.Zero, false); (Logic.One, true) ] in
  List.iter
    (fun (a, ba) ->
      Alcotest.check value_t "not" (Logic.of_bool (not ba)) (Logic.lnot a);
      List.iter
        (fun (b, bb) ->
          Alcotest.check value_t "and" (Logic.of_bool (ba && bb)) (Logic.land_ a b);
          Alcotest.check value_t "or" (Logic.of_bool (ba || bb)) (Logic.lor_ a b);
          Alcotest.check value_t "xor" (Logic.of_bool (ba <> bb)) (Logic.lxor_ a b))
        known)
    known

let test_logic_x_optimism () =
  Alcotest.check value_t "0 and X = 0" Logic.Zero (Logic.land_ Logic.Zero Logic.X);
  Alcotest.check value_t "1 or X = 1" Logic.One (Logic.lor_ Logic.One Logic.X);
  Alcotest.check value_t "1 and X = X" Logic.X (Logic.land_ Logic.One Logic.X);
  Alcotest.check value_t "X xor 1 = X" Logic.X (Logic.lxor_ Logic.X Logic.One);
  Alcotest.check value_t "mux X sel, equal data" Logic.One
    (Logic.mux ~sel:Logic.X Logic.One Logic.One);
  Alcotest.check value_t "mux X sel, unequal data" Logic.X
    (Logic.mux ~sel:Logic.X Logic.Zero Logic.One)

let test_logic_full_add_exhaustive () =
  (* On fully known inputs, matches integer addition. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              let sum, carry = Logic.full_add a b c in
              match (Logic.to_bool a, Logic.to_bool b, Logic.to_bool c) with
              | Some ba, Some bb, Some bc ->
                let total =
                  (if ba then 1 else 0) + (if bb then 1 else 0)
                  + if bc then 1 else 0
                in
                Alcotest.check value_t "sum" (Logic.of_bool (total land 1 = 1)) sum;
                Alcotest.check value_t "carry" (Logic.of_bool (total >= 2)) carry
              | _ -> ())
            all_values)
        all_values)
    all_values

let test_logic_full_add_majority_optimism () =
  (* Carry known when two knowns agree, even with an X third input. *)
  let _, carry = Logic.full_add Logic.One Logic.One Logic.X in
  Alcotest.check value_t "carry 1" Logic.One carry;
  let _, carry = Logic.full_add Logic.Zero Logic.Zero Logic.X in
  Alcotest.check value_t "carry 0" Logic.Zero carry

(* Cell *)

let test_cell_shapes () =
  List.iter
    (fun kind ->
      let inputs = Array.make (Cell.arity kind) Logic.Zero in
      let outputs = Cell.eval kind inputs in
      Alcotest.(check int)
        (Cell.name kind ^ " output count")
        (Cell.output_count kind) (Array.length outputs);
      (* Every declared output has a delay. *)
      for o = 0 to Cell.output_count kind - 1 do
        Alcotest.(check bool)
          (Cell.name kind ^ " delay >= 0")
          true
          (Cell.delay kind ~output:o >= 0.0)
      done)
    Cell.all

let test_cell_eval_arity_check () =
  Alcotest.(check bool)
    "wrong arity rejected" true
    (match Cell.eval Cell.Nand2 [| Logic.One |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cell_delay_bounds () =
  Alcotest.(check bool)
    "bad output index rejected" true
    (match Cell.delay Cell.Inv ~output:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cell_fa_matches_logic () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              let expected_sum, expected_carry = Logic.full_add a b c in
              match Cell.eval Cell.Full_adder [| a; b; c |] with
              | [| sum; carry |] ->
                Alcotest.check value_t "sum" expected_sum sum;
                Alcotest.check value_t "carry" expected_carry carry
              | _ -> Alcotest.fail "FA must have two outputs")
            all_values)
        all_values)
    all_values

let test_cell_sequential_flag () =
  Alcotest.(check bool) "dff" true (Cell.is_sequential Cell.Dff);
  Alcotest.(check bool) "inv" false (Cell.is_sequential Cell.Inv)

(* Circuit *)

let test_circuit_builder () =
  let c = C.create "t" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  let y = C.add_gate c Cell.And2 [| a; b |] in
  C.mark_output c y "y";
  Alcotest.(check int) "one cell" 1 (C.cell_count c);
  Alcotest.(check int) "three nets" 3 (C.net_count c);
  Alcotest.(check bool) "a is primary" true (C.is_primary_input c a);
  Alcotest.(check bool) "y driven" false (C.is_primary_input c y);
  (match C.driver c y with
  | Some (id, 0) ->
    let cell = C.get_cell c id in
    Alcotest.(check bool) "driver is the AND" true (cell.kind = Cell.And2)
  | Some _ | None -> Alcotest.fail "bad driver");
  let fanout = C.fanout c in
  Alcotest.(check int) "a read once" 1 (List.length fanout.(a))

let test_circuit_bus_naming () =
  let c = C.create "t" in
  let bus = C.add_input_bus c "data" 4 in
  Alcotest.(check string) "lsb name" "data[0]" (C.net_name c bus.(0));
  Alcotest.(check string) "msb name" "data[3]" (C.net_name c bus.(3));
  C.mark_output_bus c bus "out";
  let found = C.find_output_bus c "out" in
  Alcotest.(check int) "bus width" 4 (Array.length found);
  Alcotest.(check bool)
    "missing bus raises" true
    (match C.find_output_bus c "nope" with
    | _ -> false
    | exception Not_found -> true)

let test_circuit_tie_sharing () =
  let c = C.create "t" in
  Alcotest.(check int) "tie0 shared" (C.tie0 c) (C.tie0 c);
  Alcotest.(check int) "tie1 shared" (C.tie1 c) (C.tie1 c);
  Alcotest.(check bool) "distinct polarities" true (C.tie0 c <> C.tie1 c)

let test_circuit_dff_init () =
  let c = C.create "t" in
  let d = C.add_input c "d" in
  let q1 = C.add_dff ~init:Logic.One c d in
  let q0 = C.add_dff c d in
  let id_of q = match C.driver c q with Some (i, _) -> i | None -> -1 in
  Alcotest.check value_t "init one" Logic.One (C.dff_init c (id_of q1));
  Alcotest.check value_t "default zero" Logic.Zero (C.dff_init c (id_of q0))

let test_circuit_rewire_validation () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  let id = match C.driver c y with Some (i, _) -> i | None -> -1 in
  Alcotest.(check bool)
    "bad slot rejected" true
    (match C.rewire_input c id 5 a with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool)
    "bad net rejected" true
    (match C.rewire_input c id 0 9999 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Check *)

let test_check_clean_circuit () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  C.mark_output c y "y";
  Alcotest.(check int) "no problems" 0 (List.length (Netlist.Check.run c))

let test_check_combinational_cycle () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y1 = C.add_gate c Cell.Nand2 [| a; a |] in
  let y2 = C.add_gate c Cell.Nand2 [| y1; a |] in
  (* Close a combinational loop: y1's input becomes y2. *)
  (match C.driver c y1 with
  | Some (id, _) -> C.rewire_input c id 0 y2
  | None -> assert false);
  C.mark_output c y2 "y";
  let errors = Netlist.Check.errors c in
  Alcotest.(check bool)
    "cycle detected" true
    (List.exists
       (function Netlist.Check.Combinational_cycle _ -> true | _ -> false)
       errors);
  Alcotest.(check bool)
    "assert_well_formed raises" true
    (match Netlist.Check.assert_well_formed c with
    | () -> false
    | exception Failure _ -> true)

let test_check_dff_loop_is_fine () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let q = C.add_dff c a in
  let d = C.add_gate c Cell.Inv [| q |] in
  (match C.driver c q with
  | Some (id, _) -> C.rewire_input c id 0 d
  | None -> assert false);
  C.mark_output c q "q";
  Alcotest.(check int) "no fatal problems" 0 (List.length (Netlist.Check.errors c))

let test_check_dangling_output () =
  let c = C.create "t" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  (* Half adder whose carry is unused. *)
  (match C.add_cell c Cell.Half_adder [| a; b |] with
  | [| sum; _carry |] -> C.mark_output c sum "s"
  | _ -> assert false);
  let problems = Netlist.Check.run c in
  Alcotest.(check bool)
    "dangling reported" true
    (List.exists
       (function Netlist.Check.Dangling_output _ -> true | _ -> false)
       problems);
  (* ...but it is not fatal. *)
  Alcotest.(check int) "not an error" 0 (List.length (Netlist.Check.errors c))

(* Timing *)

let test_timing_inverter_chain () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let x1 = C.add_gate c Cell.Inv [| a |] in
  let x2 = C.add_gate c Cell.Inv [| x1 |] in
  let x3 = C.add_gate c Cell.Inv [| x2 |] in
  C.mark_output c x3 "y";
  check_close 1e-9 "three inverters" 3.0 (Netlist.Timing.logical_depth c)

let test_timing_dff_bounded () =
  (* in -> INV -> DFF -> INV -> out: paths are (input + INV -> DFF.D) and
     (DFF clk->q + INV -> output); depth = clk_to_q + 1. *)
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let x1 = C.add_gate c Cell.Inv [| a |] in
  let q = C.add_dff c x1 in
  let x2 = C.add_gate c Cell.Inv [| q |] in
  C.mark_output c x2 "y";
  check_close 1e-9 "register cuts the path" (Cell.clk_to_q +. 1.0)
    (Netlist.Timing.logical_depth c)

let test_timing_critical_path_trace () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let slow = C.add_gate c Cell.Xor2 [| a; a |] in
  let slow2 = C.add_gate c Cell.Xor2 [| slow; a |] in
  let fast = C.add_gate c Cell.Inv [| a |] in
  let y = C.add_gate c Cell.And2 [| slow2; fast |] in
  C.mark_output c y "y";
  let report = Netlist.Timing.analyze c in
  check_close 1e-9 "depth" (1.9 +. 1.9 +. 1.5) report.logical_depth;
  Alcotest.(check int) "path length" 3 (List.length report.critical_path)

let test_timing_histogram_and_spread () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let deep = C.add_gate c Cell.Inv [| a |] in
  let deep = C.add_gate c Cell.Inv [| deep |] in
  let deep = C.add_gate c Cell.Inv [| deep |] in
  let shallow = C.add_gate c Cell.Inv [| a |] in
  C.mark_output c deep "deep";
  C.mark_output c shallow "shallow";
  let hist = Netlist.Timing.path_histogram c ~bins:3 in
  Alcotest.(check int) "bins" 3 (Array.length hist);
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "two endpoints" 2 total;
  let spread = Netlist.Timing.slack_spread c in
  Alcotest.(check bool) "spread in (0,1)" true (spread > 0.0 && spread < 1.0)

let test_timing_degenerate_single_gate () =
  (* One gate, one endpoint: the histogram holds exactly that endpoint in
     its top bin, the spread is 0 (median = max), and there is no
     multi-input gate to accumulate skew. *)
  let c = C.create "t" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y";
  let hist = Netlist.Timing.path_histogram c ~bins:4 in
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "one endpoint" 1 total;
  Alcotest.(check int) "in the top bin" 1 (snd hist.(3));
  check_close 1e-9 "spread" 0.0 (Netlist.Timing.slack_spread c);
  check_close 1e-9 "skew" 0.0 (Netlist.Timing.input_skew c)

let test_timing_degenerate_equal_arrivals () =
  (* Two identical branches: every endpoint arrives together - balanced. *)
  let c = C.create "t" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y0";
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y1";
  check_close 1e-9 "spread" 0.0 (Netlist.Timing.slack_spread c);
  let xor = C.add_gate c Cell.Xor2 [| a; a |] in
  C.mark_output c xor "y2";
  check_close 1e-9 "equal-arrival skew" 0.0 (Netlist.Timing.input_skew c)

let test_timing_degenerate_no_combinational () =
  (* Input straight into a register: all-zero arrivals on the input side
     must not divide by zero anywhere. *)
  let c = C.create "t" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_dff c a) "q";
  let hist = Netlist.Timing.path_histogram c ~bins:2 in
  let total = Array.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "dff D plus output" 2 total;
  let spread = Netlist.Timing.slack_spread c in
  Alcotest.(check bool) "spread finite" true
    (Float.is_finite spread && spread >= 0.0 && spread <= 1.0);
  check_close 1e-9 "skew" 0.0 (Netlist.Timing.input_skew c)

let test_timing_histogram_bad_bins () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  C.mark_output c (C.add_gate c Cell.Inv [| a |]) "y";
  Alcotest.check_raises "bins < 1"
    (Invalid_argument "Timing.path_histogram: bins < 1") (fun () ->
      ignore (Netlist.Timing.path_histogram c ~bins:0))

(* Stats *)

let test_stats_compute () =
  let c = C.create "t" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  let y = C.add_gate c Cell.And2 [| a; b |] in
  let q = C.add_dff c y in
  ignore (C.tie0 c);
  C.mark_output c q "q";
  let stats = Netlist.Stats.compute c in
  Alcotest.(check int) "ties excluded from N" 2 stats.cell_total;
  Alcotest.(check int) "one dff" 1 stats.dff_count;
  check_close 1e-9 "area" (Cell.area Cell.And2 +. Cell.area Cell.Dff) stats.area;
  check_close 1e-18 "avg cap"
    ((Cell.switched_cap Cell.And2 +. Cell.switched_cap Cell.Dff) /. 2.0)
    stats.avg_switched_cap;
  Alcotest.(check bool)
    "tie counted by kind" true
    (List.mem_assoc Cell.Tie0 stats.by_kind)

(* Placement *)

let test_placement_invariants () =
  let spec = Multipliers.Wallace.basic ~bits:8 in
  let p = Netlist.Placement.place spec.circuit in
  (* Every cell gets a distinct site. *)
  let seen = Hashtbl.create 64 in
  C.iter_cells
    (fun cell ->
      let pos = Netlist.Placement.position p cell.id in
      Alcotest.(check bool)
        (Printf.sprintf "cell %d site unique" cell.id)
        false (Hashtbl.mem seen pos);
      Hashtbl.add seen pos ())
    spec.circuit;
  Alcotest.(check bool)
    "wirelength positive" true
    (Netlist.Placement.total_wirelength p > 0.0)

let test_placement_deterministic () =
  let spec = Multipliers.Rca.basic ~bits:6 in
  let wl seed =
    Netlist.Placement.total_wirelength
      (Netlist.Placement.place ~seed spec.circuit)
  in
  check_close 1e-9 "same seed, same result" (wl 3) (wl 3)

let test_placement_improvement_helps () =
  let spec = Multipliers.Rca.basic ~bits:8 in
  let wl passes =
    Netlist.Placement.total_wirelength
      (Netlist.Placement.place ~seed:5 ~improvement_passes:passes spec.circuit)
  in
  Alcotest.(check bool)
    "greedy swaps never hurt" true
    (wl 3 <= wl 0 +. 1e-9)

let test_placement_single_pin_net () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  C.mark_output c y "y";
  let p = Netlist.Placement.place c in
  (* The output net has a driver but no cell sink: zero HPWL. *)
  check_close 1e-9 "dangling net" 0.0 (Netlist.Placement.net_length p y)

let test_placement_refined_stats () =
  let spec = Multipliers.Wallace.basic ~bits:8 in
  let p = Netlist.Placement.place spec.circuit in
  let r = Netlist.Placement.refine_stats spec.circuit p in
  Alcotest.(check bool)
    "wire share in (0, 0.6)" true
    (r.wire_cap_share > 0.0 && r.wire_cap_share < 0.6);
  Alcotest.(check bool)
    "refined C above cell-only C" true
    (r.avg_cap_with_wires > r.base.avg_switched_cap);
  Alcotest.(check bool) "net length sane" true
    (r.avg_net_length > 0.1 && r.avg_net_length < 1000.0)

(* Optimize *)

let test_optimize_folds_constants () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let zero = C.tie0 c in
  let y = C.add_gate c Cell.And2 [| a; zero |] in
  let z = C.add_gate c Cell.Or2 [| y; a |] in
  C.mark_output c z "z";
  let r = Netlist.Optimize.run c in
  (* AND(a,0) = 0, OR(0,a) = a: everything collapses to a wire. *)
  Alcotest.(check bool)
    "no logic cells left" true
    (List.for_all
       (fun (cell : C.cell) ->
         match cell.kind with Cell.Tie0 | Cell.Tie1 -> true | _ -> false)
       (C.cells r.circuit));
  Alcotest.(check int) "output aliases the input" (r.map a) (r.map z)

let test_optimize_xor_self_cancels () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Xor2 [| a; a |] in
  C.mark_output c y "y";
  let r = Netlist.Optimize.run c in
  let state = Logicsim.Functional.initial r.circuit in
  let state =
    Logicsim.Functional.set_inputs r.circuit state [ (r.map a, Logic.One) ]
  in
  Alcotest.(check bool)
    "XOR(a,a) folds to 0" true
    (Logic.equal (Logicsim.Functional.value state (r.map y)) Logic.Zero)

let test_optimize_fa_downgrade () =
  let c = C.create "t" in
  let a = C.add_input c "a" and b = C.add_input c "b" in
  let zero = C.tie0 c in
  (match C.add_cell c Cell.Full_adder [| a; b; zero |] with
  | [| sum; carry |] ->
    C.mark_output c sum "s";
    C.mark_output c carry "co"
  | _ -> assert false);
  let r = Netlist.Optimize.run c in
  Alcotest.(check int) "one downgrade" 1 r.stats.downgraded;
  Alcotest.(check bool)
    "an HA remains" true
    (List.exists
       (fun (cell : C.cell) -> cell.kind = Cell.Half_adder)
       (C.cells r.circuit))

let test_optimize_removes_dead_logic () =
  let c = C.create "t" in
  let a = C.add_input c "a" in
  let y = C.add_gate c Cell.Inv [| a |] in
  let _dead = C.add_gate c Cell.Xor2 [| y; a |] in
  C.mark_output c y "y";
  let r = Netlist.Optimize.run c in
  Alcotest.(check int) "dead cell swept" 1 r.stats.removed_dead;
  Alcotest.(check bool)
    "only the inverter left" true
    (List.for_all
       (fun (cell : C.cell) ->
         match cell.kind with
         | Cell.Inv | Cell.Tie0 | Cell.Tie1 -> true
         | _ -> false)
       (C.cells r.circuit))

let test_optimize_preserves_sequential_behaviour () =
  let spec = Multipliers.Sequential.basic ~bits:6 in
  let optimized = Multipliers.Spec_optimize.run spec in
  let sim = Multipliers.Harness.fresh_simulator optimized in
  let rng = Numerics.Rng.create 41 in
  for _ = 1 to 8 do
    let x = Numerics.Rng.int rng 64 and y = Numerics.Rng.int rng 64 in
    Alcotest.(check int)
      (Printf.sprintf "%d*%d" x y)
      (x * y)
      (Multipliers.Harness.compute optimized sim x y)
  done

let prop_optimize_equivalent =
  QCheck.Test.make ~name:"optimised circuit is functionally equivalent"
    ~count:30 QCheck.small_int (fun seed ->
      let rng = Numerics.Rng.create (seed + 500) in
      let c = C.create "random" in
      let pool = ref (Array.to_list (C.add_input_bus c "in" 5)) in
      (* Sprinkle constants into the pool so folding has work to do. *)
      pool := C.tie0 c :: C.tie1 c :: !pool;
      let pick () = List.nth !pool (Numerics.Rng.int rng (List.length !pool)) in
      let kinds =
        [| Cell.Inv; Cell.Nand2; Cell.Nor2; Cell.And2; Cell.Or2; Cell.Xor2;
           Cell.Xnor2; Cell.Mux2; Cell.Half_adder; Cell.Full_adder |]
      in
      for _ = 1 to 30 do
        let kind = kinds.(Numerics.Rng.int rng (Array.length kinds)) in
        let ins = Array.init (Cell.arity kind) (fun _ -> pick ()) in
        Array.iter (fun n -> pool := n :: !pool) (C.add_cell c kind ins)
      done;
      let outputs =
        List.filteri (fun i _ -> i < 6) !pool
      in
      List.iteri (fun i n -> C.mark_output c n (Printf.sprintf "o%d" i)) outputs;
      let r = Netlist.Optimize.run c in
      let inputs = C.primary_inputs c in
      let ok = ref (r.stats.cells_after <= r.stats.cells_before) in
      for _ = 1 to 4 do
        let bindings =
          List.map (fun n -> (n, Logic.of_bool (Numerics.Rng.bool rng))) inputs
        in
        let reference =
          Logicsim.Functional.set_inputs c
            (Logicsim.Functional.initial c)
            bindings
        in
        let mapped_bindings =
          List.map (fun (n, v) -> (r.map n, v)) bindings
        in
        let optimised =
          Logicsim.Functional.set_inputs r.circuit
            (Logicsim.Functional.initial r.circuit)
            mapped_bindings
        in
        List.iter
          (fun n ->
            if
              not
                (Logic.equal
                   (Logicsim.Functional.value reference n)
                   (Logicsim.Functional.value optimised (r.map n)))
            then ok := false)
          outputs
      done;
      !ok)

(* Bdd *)

let bare_core core name bits =
  let c = C.create name in
  let a = C.add_input_bus c "a" bits in
  let b = C.add_input_bus c "b" bits in
  let p = core c ~a ~b in
  C.mark_output_bus c p "p";
  c

let test_bdd_basics () =
  let m = Netlist.Bdd.create () in
  let x = Netlist.Bdd.var m 0 and y = Netlist.Bdd.var m 1 in
  (* De Morgan. *)
  Alcotest.(check bool)
    "not(x and y) = not x or not y" true
    (Netlist.Bdd.equal
       (Netlist.Bdd.bdd_not m (Netlist.Bdd.bdd_and m x y))
       (Netlist.Bdd.bdd_or m (Netlist.Bdd.bdd_not m x) (Netlist.Bdd.bdd_not m y)));
  (* xor with self cancels. *)
  Alcotest.(check bool)
    "x xor x = false" true
    (Netlist.Bdd.equal (Netlist.Bdd.bdd_xor m x x) (Netlist.Bdd.bdd_false m));
  (* ite identity. *)
  Alcotest.(check bool)
    "ite(x, y, y) = y" true
    (Netlist.Bdd.equal (Netlist.Bdd.ite m x y y) y);
  (* eval agrees with semantics. *)
  let f = Netlist.Bdd.bdd_and m x (Netlist.Bdd.bdd_not m y) in
  Alcotest.(check bool) "eval 10" true
    (Netlist.Bdd.eval m f (fun i -> i = 0));
  Alcotest.(check bool) "eval 11" false
    (Netlist.Bdd.eval m f (fun _ -> true))

let test_bdd_multiplier_equivalence () =
  (* The formal counterpart of the sampled checks: all four cores compute
     the same function at 6 bits (fast; 8-bit runs in ~1 s and is covered
     by the CLI `prove` command). *)
  let bits = 6 in
  let rca = bare_core Multipliers.Rca.core "rca" bits in
  List.iter
    (fun (name, core) ->
      let other = bare_core core name bits in
      match Netlist.Bdd.check_equivalence rca other with
      | Netlist.Bdd.Equivalent -> ()
      | Netlist.Bdd.Inequivalent o ->
        Alcotest.fail (Printf.sprintf "%s differs from RCA at %s" name o)
      | Netlist.Bdd.Aborted -> Alcotest.fail (name ^ ": node limit"))
    [
      ("wallace", Multipliers.Wallace.core);
      ("dadda", Multipliers.Dadda.core);
      ("booth", Multipliers.Booth.core);
    ]

let test_bdd_detects_inequivalence () =
  let adder width carry_in =
    let c = C.create "add" in
    let a = C.add_input_bus c "a" width in
    let b = C.add_input_bus c "b" width in
    let cin = if carry_in then Some (C.tie1 c) else None in
    let sum, _ =
      match cin with
      | Some n -> Multipliers.Adders.ripple_carry c ~cin:n a b
      | None -> Multipliers.Adders.ripple_carry c a b
    in
    C.mark_output_bus c sum "s";
    c
  in
  match Netlist.Bdd.check_equivalence (adder 4 false) (adder 4 true) with
  | Netlist.Bdd.Inequivalent "s[0]" -> ()
  | Netlist.Bdd.Inequivalent o -> Alcotest.fail ("unexpected output: " ^ o)
  | Netlist.Bdd.Equivalent -> Alcotest.fail "a+b and a+b+1 cannot be equal"
  | Netlist.Bdd.Aborted -> Alcotest.fail "node limit"

let test_bdd_proves_optimizer_sound () =
  (* The clean-up pass, formally: optimised Wallace core == original. *)
  let original = bare_core Multipliers.Wallace.core "w" 6 in
  let optimized = (Netlist.Optimize.run original).circuit in
  match Netlist.Bdd.check_equivalence original optimized with
  | Netlist.Bdd.Equivalent -> ()
  | Netlist.Bdd.Inequivalent o -> Alcotest.fail ("optimizer broke " ^ o)
  | Netlist.Bdd.Aborted -> Alcotest.fail "node limit"

let test_bdd_interface_mismatch () =
  let a = bare_core Multipliers.Rca.core "a" 4 in
  let b = bare_core Multipliers.Rca.core "b" 6 in
  Alcotest.(check bool)
    "width mismatch rejected" true
    (match Netlist.Bdd.check_equivalence a b with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_bdd_node_limit () =
  let a = bare_core Multipliers.Rca.core "a" 8 in
  let b = bare_core Multipliers.Wallace.core "b" 8 in
  match Netlist.Bdd.check_equivalence ~max_nodes:500 a b with
  | Netlist.Bdd.Aborted -> ()
  | Netlist.Bdd.Equivalent | Netlist.Bdd.Inequivalent _ ->
    Alcotest.fail "expected abort under a tiny node budget"

(* Vec *)

let test_vec_basic () =
  let v = Netlist.Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Netlist.Vec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Netlist.Vec.length v);
  Alcotest.(check int) "get" 42 (Netlist.Vec.get v 21);
  Netlist.Vec.set v 21 0;
  Alcotest.(check int) "set" 0 (Netlist.Vec.get v 21);
  Alcotest.(check int)
    "fold"
    (List.fold_left ( + ) 0 (Netlist.Vec.to_list v))
    (Netlist.Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool)
    "bounds checked" true
    (match Netlist.Vec.get v 100 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "netlist"
    [
      ( "logic",
        [
          Alcotest.test_case "bool roundtrip" `Quick test_logic_bool_roundtrip;
          Alcotest.test_case "gates on booleans" `Quick test_logic_gates_on_booleans;
          Alcotest.test_case "X optimism" `Quick test_logic_x_optimism;
          Alcotest.test_case "full add exhaustive" `Quick test_logic_full_add_exhaustive;
          Alcotest.test_case "full add majority" `Quick
            test_logic_full_add_majority_optimism;
        ] );
      ( "cell",
        [
          Alcotest.test_case "shapes" `Quick test_cell_shapes;
          Alcotest.test_case "arity check" `Quick test_cell_eval_arity_check;
          Alcotest.test_case "delay bounds" `Quick test_cell_delay_bounds;
          Alcotest.test_case "FA matches logic" `Quick test_cell_fa_matches_logic;
          Alcotest.test_case "sequential flag" `Quick test_cell_sequential_flag;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "builder" `Quick test_circuit_builder;
          Alcotest.test_case "bus naming" `Quick test_circuit_bus_naming;
          Alcotest.test_case "tie sharing" `Quick test_circuit_tie_sharing;
          Alcotest.test_case "dff init" `Quick test_circuit_dff_init;
          Alcotest.test_case "rewire validation" `Quick test_circuit_rewire_validation;
        ] );
      ( "check",
        [
          Alcotest.test_case "clean circuit" `Quick test_check_clean_circuit;
          Alcotest.test_case "combinational cycle" `Quick test_check_combinational_cycle;
          Alcotest.test_case "dff loop ok" `Quick test_check_dff_loop_is_fine;
          Alcotest.test_case "dangling output" `Quick test_check_dangling_output;
        ] );
      ( "timing",
        [
          Alcotest.test_case "inverter chain" `Quick test_timing_inverter_chain;
          Alcotest.test_case "dff bounded" `Quick test_timing_dff_bounded;
          Alcotest.test_case "critical path trace" `Quick test_timing_critical_path_trace;
          Alcotest.test_case "histogram and spread" `Quick
            test_timing_histogram_and_spread;
          Alcotest.test_case "degenerate: single gate" `Quick
            test_timing_degenerate_single_gate;
          Alcotest.test_case "degenerate: equal arrivals" `Quick
            test_timing_degenerate_equal_arrivals;
          Alcotest.test_case "degenerate: no combinational" `Quick
            test_timing_degenerate_no_combinational;
          Alcotest.test_case "histogram rejects bins < 1" `Quick
            test_timing_histogram_bad_bins;
        ] );
      ("stats", [ Alcotest.test_case "compute" `Quick test_stats_compute ]);
      ( "placement",
        [
          Alcotest.test_case "invariants" `Quick test_placement_invariants;
          Alcotest.test_case "deterministic" `Quick test_placement_deterministic;
          Alcotest.test_case "improvement helps" `Quick
            test_placement_improvement_helps;
          Alcotest.test_case "single pin net" `Quick test_placement_single_pin_net;
          Alcotest.test_case "refined stats" `Quick test_placement_refined_stats;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "boolean identities" `Quick test_bdd_basics;
          Alcotest.test_case "multiplier equivalence" `Slow
            test_bdd_multiplier_equivalence;
          Alcotest.test_case "detects inequivalence" `Quick
            test_bdd_detects_inequivalence;
          Alcotest.test_case "optimizer sound (formal)" `Quick
            test_bdd_proves_optimizer_sound;
          Alcotest.test_case "interface mismatch" `Quick test_bdd_interface_mismatch;
          Alcotest.test_case "node limit" `Quick test_bdd_node_limit;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "folds constants" `Quick test_optimize_folds_constants;
          Alcotest.test_case "xor self cancels" `Quick test_optimize_xor_self_cancels;
          Alcotest.test_case "FA downgrade" `Quick test_optimize_fa_downgrade;
          Alcotest.test_case "dead logic removed" `Quick
            test_optimize_removes_dead_logic;
          Alcotest.test_case "sequential preserved" `Slow
            test_optimize_preserves_sequential_behaviour;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_optimize_equivalent ] );
      ("vec", [ Alcotest.test_case "basic" `Quick test_vec_basic ]);
    ]
