(* optpower - command-line front end reproducing every table and figure of
   Schuster et al., "Architectural and Technology Influence on the Optimal
   Total Power Consumption" (DATE 2006). *)

open Cmdliner

let print = print_string

let csv_path_arg =
  let doc = "Also write the raw data to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel maps (default: $(b,OPTPOWER_JOBS) or the \
     machine's recommended domain count). Results are bitwise-identical at \
     any value; 1 forces sequential execution."
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None ->
          Error (`Msg (Printf.sprintf "invalid value '%s', expected N >= 1" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some positive_int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs jobs = Option.iter Parallel.Pool.set_default_jobs jobs

(* Observability flags shared by the subcommands: --trace FILE records the
   run and writes a Chrome trace_event JSON, --metrics prints the span /
   counter / histogram report after the normal output. *)

let trace_path_arg =
  let doc =
    "Record the run and write a Chrome trace_event JSON to $(docv) \
     (load it in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Record the run and print the observability report (span profile tree, \
     counters, histograms) after the normal output."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let obs_arg = Term.(const (fun t m -> (t, m)) $ trace_path_arg $ metrics_arg)

(* Warm-store flags shared by explore and serve: --store overrides the
   directory, --no-store runs cold. Open failures degrade to cold. *)

let store_path_arg =
  let doc =
    "Warm-store directory (default: $(b,OPTPOWER_STORE) or \
     $(b,.optpower-store)). Cross-run cache of characterisations, \
     certified bounds and exact optima; replays are bitwise-identical to \
     cold solves."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let no_store_arg =
  let doc = "Run cold: no warm store is opened or written." in
  Arg.(value & flag & info [ "no-store" ] ~doc)

(* Constraint caps must be finite > 0 — reject at parse time so the
   error is a usage message, not an uncaught Invalid_argument. *)
let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0.0 -> Ok v
    | Some _ -> Error (`Msg (Printf.sprintf "expected a finite value > 0, got %s" s))
    | None -> Error (`Msg (Printf.sprintf "invalid value '%s', expected a float" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let open_warm ?readonly ~no_store path =
  if no_store then None else Power_core.Warm.open_store ?readonly ?path ()

let with_obs (trace, metrics) f =
  let active = trace <> None || metrics in
  if active then begin
    Obs.set_enabled true;
    Obs.reset ()
  end;
  Fun.protect f ~finally:(fun () ->
      if active then begin
        if metrics then begin
          print_newline ();
          print (Obs.Report.profile ())
        end;
        Option.iter
          (fun path ->
            Obs.Report.write_chrome_trace ~path ();
            Printf.printf "Chrome trace written to %s\n" path)
          trace
      end)

let table1_cmd =
  let run jobs obs csv =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    let rows = Report.Experiments.table1 () in
    print (Report.Experiments.render_table1 rows);
    Option.iter
      (fun path ->
        let header =
          [
            "label"; "vdd"; "vth"; "pdyn_w"; "pstat_w"; "ptot_w"; "eq13_w";
            "err_pct"; "paper_ptot_w"; "paper_err_pct";
          ]
        in
        let data =
          List.map
            (fun (r : Report.Experiments.table1_row) ->
              [
                r.label;
                string_of_float r.vdd;
                string_of_float r.vth;
                string_of_float r.pdyn;
                string_of_float r.pstat;
                string_of_float r.ptot;
                string_of_float r.eq13;
                string_of_float r.err_pct;
                string_of_float r.paper.ptot;
                string_of_float r.paper.err_pct;
              ])
            rows
        in
        Report.Csv.write_file ~path ~header ~rows:data;
        Printf.printf "\nCSV written to %s\n" path)
      csv
  in
  let doc = "Reproduce Table 1 (13 multipliers at their optimal point, LL)." in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(const run $ jobs_arg $ obs_arg $ csv_path_arg)

let wallace_cmd name which doc =
  let run jobs obs =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    print (Report.Experiments.render_wallace (Report.Experiments.table_wallace which))
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ jobs_arg $ obs_arg)

let table2_cmd =
  let run () = print (Report.Experiments.render_table2 (Report.Experiments.table2 ())) in
  let doc =
    "Re-characterise the three technology flavors by ring-oscillator \
     simulation (Table 2 check)."
  in
  Cmd.v (Cmd.info "table2" ~doc) Term.(const run $ const ())

let fig1_cmd =
  let activities =
    let doc = "Comma-separated activity values for the curves." in
    Arg.(value & opt (some (list float)) None & info [ "activities" ] ~doc)
  in
  let run jobs obs activities =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    print (Report.Experiments.render_figure1 (Report.Experiments.figure1 ?activities ()))
  in
  let doc = "Reproduce Figure 1 (Ptot vs Vdd at several activities)." in
  Cmd.v (Cmd.info "fig1" ~doc) Term.(const run $ jobs_arg $ obs_arg $ activities)

let fig2_cmd =
  let alpha =
    let doc = "Alpha-power exponent for the linearisation plot." in
    Arg.(value & opt float 1.5 & info [ "alpha" ] ~doc)
  in
  let run alpha =
    print (Report.Experiments.render_figure2 (Report.Experiments.figure2 ~alpha ()))
  in
  let doc = "Reproduce Figure 2 (Vdd^(1/alpha) linearisation)." in
  Cmd.v (Cmd.info "fig2" ~doc) Term.(const run $ alpha)

let sketch_cmd =
  let bits =
    Arg.(value & opt int 8 & info [ "bits" ] ~doc:"Operand width.")
  in
  let stages =
    Arg.(value & opt int 2 & info [ "stages" ] ~doc:"Pipeline stages.")
  in
  let run bits stages =
    print
      (Report.Experiments.pipeline_sketch ~bits ~stages
         ~cut:Multipliers.Rca.Horizontal);
    print_newline ();
    print
      (Report.Experiments.pipeline_sketch ~bits ~stages
         ~cut:Multipliers.Rca.Diagonal)
  in
  let doc = "Render the pipeline register placements of Figures 3 and 4." in
  Cmd.v (Cmd.info "sketch" ~doc) Term.(const run $ bits $ stages)

let scratch_cmd =
  let cycles =
    Arg.(value & opt int 160 & info [ "cycles" ] ~doc:"Simulated data cycles.")
  in
  let run jobs obs cycles =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    print (Report.Experiments.render_scratch (Report.Experiments.scratch ~cycles ()))
  in
  let doc =
    "From-scratch run: generate all thirteen netlists, simulate activity, \
     extract parameters and optimise (no published numbers used)."
  in
  Cmd.v (Cmd.info "scratch" ~doc) Term.(const run $ jobs_arg $ obs_arg $ cycles)

let sweep_cmd =
  let label =
    Arg.(
      value & opt string "RCA"
      & info [ "arch" ] ~doc:"Table 1 architecture label.")
  in
  let run obs label =
    with_obs obs @@ fun () ->
    let points = Serve.Engine.sweep label in
    Printf.printf "%-8s %-8s %-10s %-10s %-10s\n" "Vdd" "Vth" "Pdyn[uW]"
      "Pstat[uW]" "Ptot[uW]";
    List.iter
      (fun (p : Power_core.Numerical_opt.point) ->
        Printf.printf "%-8.3f %-8.3f %-10.2f %-10.2f %-10.2f\n" p.vdd p.vth
          (p.dynamic *. 1e6) (p.static *. 1e6) (p.total *. 1e6))
      points
  in
  let doc = "Print the Ptot(Vdd) locus for one architecture." in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run $ obs_arg $ label)

let ablate_cmd =
  let which =
    let doc = "Which ablation: dibl, glitch or linrange." in
    Arg.(
      required
      & pos 0 (some (enum [ ("dibl", `Dibl); ("glitch", `Glitch); ("linrange", `Linrange) ])) None
      & info [] ~docv:"STUDY" ~doc)
  in
  let run which =
    match which with
    | `Dibl ->
      let row = Power_core.Paper_data.table1_find "RCA" in
      let problem =
        Power_core.Calibration.problem_of_row Device.Technology.ll
          ~f:Power_core.Paper_data.frequency row
      in
      print (Report.Studies.render_dibl (Power_core.Ablation.dibl_sweep problem))
    | `Glitch ->
      let labels =
        [ "RCA"; "RCA hor.pipe2"; "RCA diagpipe2"; "RCA hor.pipe4";
          "RCA diagpipe4"; "Wallace" ]
      in
      print
        (Report.Studies.render_glitch
           (Power_core.Ablation.glitch_ablation Device.Technology.ll
              ~f:Power_core.Paper_data.frequency ~labels))
    | `Linrange ->
      print
        (Report.Studies.render_lin_range
           (Power_core.Ablation.linearization_range_sweep ()))
  in
  let doc = "Ablation studies (DIBL invariance, glitch power, Eq. 7 range)." in
  Cmd.v (Cmd.info "ablate" ~doc) Term.(const run $ which)

let freq_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Table 1 label.")
  in
  let run label =
    let row = Power_core.Paper_data.table1_find label in
    let params =
      Power_core.Calibration.params_of_row Device.Technology.ll
        ~f:Power_core.Paper_data.frequency row
    in
    print
      (Report.Studies.render_frequency
         (Power_core.Ablation.frequency_sweep params));
    match
      Power_core.Tech_compare.crossover_frequency Device.Technology.hs
        Device.Technology.ll params
    with
    | Some fx -> Printf.printf "\nHS/LL crossover: %.0f MHz\n" (fx /. 1e6)
    | None -> print_endline "\nNo HS/LL crossover between 1 MHz and 1 GHz."
  in
  let doc = "Optimal power vs throughput per technology flavor." in
  Cmd.v (Cmd.info "freq" ~doc) Term.(const run $ arch)

let widths_cmd =
  let run () =
    print
      (Report.Studies.render_width
         (Power_core.Ablation.width_scaling Device.Technology.ll
            ~f:Power_core.Paper_data.frequency))
  in
  let doc = "From-scratch optimal power vs operand width." in
  Cmd.v (Cmd.info "widths" ~doc) Term.(const run $ const ())

let extensions_cmd =
  let run () =
    print
      (Report.Studies.render_extensions Device.Technology.ll
         ~f:Power_core.Paper_data.frequency)
  in
  let doc = "Score the extension architectures (Booth, Dadda, parallels)." in
  Cmd.v (Cmd.info "extensions" ~doc) Term.(const run $ const ())

let prove_cmd =
  let bits =
    Arg.(value & opt int 8 & info [ "bits" ] ~doc:"Operand width (BDDs of \
                                                   multipliers grow fast).")
  in
  let run bits =
    let build name core =
      let c = Netlist.Circuit.create name in
      let a = Netlist.Circuit.add_input_bus c "a" bits in
      let b = Netlist.Circuit.add_input_bus c "b" bits in
      let p = core c ~a ~b in
      Netlist.Circuit.mark_output_bus c p "p";
      c
    in
    let reference = build "rca" Multipliers.Rca.core in
    Printf.printf
      "BDD equivalence proofs against the %d-bit RCA core (shared \
       hash-consed manager):\n" bits;
    List.iter
      (fun (name, core) ->
        match Netlist.Bdd.check_equivalence reference (build name core) with
        | Netlist.Bdd.Equivalent ->
          Printf.printf "  %-8s EQUIVALENT (proven for all 2^%d input \
                         pairs)\n%!" name (2 * bits)
        | Netlist.Bdd.Inequivalent o ->
          Printf.printf "  %-8s DIFFERS at output %s\n%!" name o
        | Netlist.Bdd.Aborted ->
          Printf.printf "  %-8s ABORTED - node budget exhausted (try fewer \
                         bits)\n%!" name)
      [
        ("wallace", Multipliers.Wallace.core);
        ("dadda", Multipliers.Dadda.core);
        ("booth", Multipliers.Booth.core);
      ]
  in
  let doc =
    "Formally prove the multiplier cores equivalent (BDD-based \
     combinational equivalence checking)."
  in
  Cmd.v (Cmd.info "prove" ~doc) Term.(const run $ bits)

let faults_cmd =
  let bits =
    Arg.(value & opt int 8 & info [ "bits" ] ~doc:"Operand width.")
  in
  let vectors =
    Arg.(value & opt int 32 & info [ "vectors" ] ~doc:"Random test vectors.")
  in
  let run bits vectors =
    let build core =
      let c = Netlist.Circuit.create "dut" in
      let a = Netlist.Circuit.add_input_bus c "a" bits in
      let b = Netlist.Circuit.add_input_bus c "b" bits in
      let p = core c ~a ~b in
      Netlist.Circuit.mark_output_bus c p "p";
      (c, p)
    in
    Printf.printf
      "Single-stuck-at coverage of %d random vectors (%d-bit cores):\n" vectors
      bits;
    List.iter
      (fun (name, core) ->
        let c, p = build core in
        let rng = Numerics.Rng.create 17 in
        let vecs = Logicsim.Faults.random_vectors ~rng ~circuit:c ~count:vectors in
        let cov =
          Logicsim.Faults.coverage c ~vectors:vecs ~outputs:(Array.to_list p)
        in
        Printf.printf "  %-8s %5.1f%% of %d faults (%d undetected)\n%!" name
          cov.coverage_pct cov.total
          (List.length cov.undetected))
      [
        ("RCA", Multipliers.Rca.core);
        ("Wallace", Multipliers.Wallace.core);
        ("Dadda", Multipliers.Dadda.core);
        ("Booth", Multipliers.Booth.core);
      ]
  in
  let doc = "Stuck-at fault coverage of random vectors on the bare cores." in
  Cmd.v (Cmd.info "faults" ~doc) Term.(const run $ bits $ vectors)

let family_enum =
  [ ("booth", Power_core.Explorer.Booth);
    ("dadda", Power_core.Explorer.Dadda);
    ("wallace", Power_core.Explorer.Wallace) ]

let explore_cmd =
  let bits =
    Arg.(value & opt int 8
         & info [ "bits" ] ~docv:"W" ~doc:"Operand width (even, >= 4).")
  in
  let families =
    Arg.(value
         & opt (list (enum family_enum))
             [ Power_core.Explorer.Booth; Power_core.Explorer.Dadda;
               Power_core.Explorer.Wallace ]
         & info [ "family" ] ~docv:"F,..."
             ~doc:
               "Substrate families to enumerate: $(b,booth), $(b,dadda) \
                and/or $(b,wallace) (default: all three).")
  in
  let max_latency =
    Arg.(value & opt (some pos_float_conv) None
         & info [ "max-latency" ] ~docv:"D"
             ~doc:
               "Keep only candidates with effective logic depth <= $(docv) \
                (strictly positive).")
  in
  let max_area =
    Arg.(value & opt (some pos_float_conv) None
         & info [ "max-area" ] ~docv:"CELLS"
             ~doc:
               "Keep only candidates with at most $(docv) cells (strictly \
                positive).")
  in
  let radices =
    Arg.(value & opt (list int) [ 2; 4; 8 ]
         & info [ "radix" ] ~docv:"R,..."
             ~doc:"Booth radix axis (entries from {2, 4, 8}).")
  in
  let stages =
    Arg.(value & opt (list int) [ 1; 2; 3 ]
         & info [ "stages" ] ~docv:"N,..." ~doc:"Pipeline-depth axis.")
  in
  let copies =
    Arg.(value & opt (list int) [ 1; 2; 4 ]
         & info [ "copies" ] ~docv:"K,..." ~doc:"Parallelisation axis.")
  in
  let signed =
    Arg.(value & flag
         & info [ "signed" ] ~doc:"Explore signed (Booth-recoded) operands.")
  in
  let fmults =
    Arg.(value & opt (list float) [ 0.5; 1.0; 2.0; 4.0 ]
         & info [ "fmult" ] ~docv:"X,..."
             ~doc:"Frequency slices, as multiples of the paper's 31.25 MHz.")
  in
  let tech =
    Arg.(value & opt (some (enum [ ("ULL", Device.Technology.ull);
                                   ("LL", Device.Technology.ll);
                                   ("HS", Device.Technology.hs) ])) None
         & info [ "tech" ] ~docv:"FLAVOR"
             ~doc:"Restrict to one technology flavor; default: all three.")
  in
  let no_prune =
    Arg.(value & flag
         & info [ "no-prune" ]
             ~doc:"Solve every candidate exactly (the differential oracle).")
  in
  let catalog =
    Arg.(value & flag
         & info [ "catalog" ]
             ~doc:
               "Legacy mode: characterise the 17 catalog architectures from \
                scratch instead of exploring the generator space.")
  in
  let cycles =
    Arg.(value & opt (some int) None
         & info [ "cycles" ] ~docv:"N"
             ~doc:"Simulated data cycles per characterisation.")
  in
  let run jobs obs bits families max_latency max_area radices stages copies
      signed fmults tech no_prune catalog cycles store_path no_store =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    if catalog then
      print
        (Report.Studies.render_exploration
           ~cycles:(Option.value ~default:100 cycles)
           ~f:Power_core.Paper_data.frequency ())
    else begin
      let axes =
        {
          Power_core.Explorer.bits;
          families;
          radices;
          signednesses =
            [ (if signed then Multipliers.Booth.Signed
               else Multipliers.Booth.Unsigned) ];
          stages;
          copies;
          fmults;
          techs =
            (match tech with
            | None -> Device.Technology.all
            | Some t -> [ t ]);
        }
      in
      print (Report.Dse_report.render_axes axes ^ "\n\n");
      let store = open_warm ~no_store store_path in
      Fun.protect ~finally:(fun () -> Option.iter Store.close store)
      @@ fun () ->
      let result =
        Power_core.Explorer.explore ~prune:(not no_prune) ?cycles ?store
          ?max_latency ?max_area axes
      in
      print (Report.Dse_report.render result ^ "\n")
    end
  in
  let doc =
    "Pruned Pareto design-space exploration over the multiplier generators \
     (family x radix x signedness x depth x parallelism x flavor x \
     frequency), warm-started from the on-disk store; $(b,--catalog) keeps \
     the legacy 17-architecture study."
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ jobs_arg $ obs_arg $ bits $ families $ max_latency
          $ max_area $ radices $ stages $ copies $ signed $ fmults $ tech
          $ no_prune $ catalog $ cycles $ store_path_arg $ no_store_arg)

let export_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Catalog label.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE"
           ~doc:"Output path (default: stdout).")
  in
  let run label out =
    let entry = Multipliers.Catalog.find label in
    let spec = entry.build () in
    match out with
    | Some path ->
      Netlist.Verilog.write_file ~path spec.circuit;
      Printf.printf "Wrote %s (%d cells) to %s\n" label
        (Netlist.Circuit.cell_count spec.circuit)
        path
    | None -> print (Netlist.Verilog.to_string spec.circuit)
  in
  let doc = "Export a generated multiplier as structural Verilog." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ arch $ out)

let vcd_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Catalog label.")
  in
  let out =
    Arg.(value & opt string "trace.vcd" & info [ "o" ] ~docv:"FILE"
           ~doc:"Output VCD path.")
  in
  let cycles =
    Arg.(value & opt int 16 & info [ "cycles" ] ~doc:"Data cycles to record.")
  in
  let run label out cycles =
    let entry = Multipliers.Catalog.find label in
    let spec = entry.build () in
    let sim = Multipliers.Harness.fresh_simulator spec in
    let nets =
      Array.to_list (Array.mapi (fun i n -> (n, Printf.sprintf "p%d" i)) spec.p_bus)
      @ Array.to_list (Array.mapi (fun i n -> (n, Printf.sprintf "a%d" i)) spec.a_bus)
    in
    let vcd = Logicsim.Vcd.create sim ~nets in
    let rng = Numerics.Rng.create 11 in
    let bound = 1 lsl spec.bits in
    for cycle = 0 to cycles - 1 do
      Logicsim.Bus.drive sim spec.a_bus (Numerics.Rng.int rng bound);
      Logicsim.Bus.drive sim spec.b_bus (Numerics.Rng.int rng bound);
      Logicsim.Simulator.settle sim;
      for _ = 1 to spec.ticks_per_cycle do
        Logicsim.Simulator.clock_tick sim;
        Logicsim.Simulator.settle sim
      done;
      Logicsim.Vcd.sample vcd ~time:(float_of_int (cycle * 10))
    done;
    Logicsim.Vcd.write_file ~path:out vcd;
    Printf.printf "Recorded %d cycles of %s to %s\n" cycles label out
  in
  let doc = "Simulate a multiplier with random stimulus and dump a VCD." in
  Cmd.v (Cmd.info "vcd" ~doc) Term.(const run $ arch $ out $ cycles)

let trace_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Catalog label.")
  in
  let cycles =
    Arg.(value & opt int 50 & info [ "cycles" ] ~doc:"Data cycles to record.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o" ] ~docv:"FILE" ~doc:"Write the CSV here.")
  in
  let run label cycles out =
    let entry = Multipliers.Catalog.find label in
    let spec = entry.build () in
    let sim = Multipliers.Harness.fresh_simulator spec in
    let rng = Numerics.Rng.create 23 in
    let drive =
      Logicsim.Activity.random_drive ~rng ~buses:[ spec.a_bus; spec.b_bus ]
    in
    let trace =
      Logicsim.Power_trace.record ~ticks_per_cycle:spec.ticks_per_cycle
        ~vdd:1.2 ~cycles ~drive sim
    in
    Printf.printf
      "%s: %d cycles at Vdd=1.2 V - average %.3g pJ/cycle, peak %.3g pJ, \
       peak/average %.2f\n"
      label cycles
      (trace.average_energy *. 1e12)
      (trace.peak_energy *. 1e12)
      trace.peak_to_average;
    match out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Logicsim.Power_trace.to_csv trace);
      close_out oc;
      Printf.printf "CSV written to %s\n" path
    | None -> ()
  in
  let doc = "Per-cycle switching-energy trace under random stimulus." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ arch $ cycles $ out)

let check_cmd =
  let samples =
    Arg.(value & opt int 4 & info [ "samples" ] ~doc:"Random pairs per design.")
  in
  let run samples =
    let all = Multipliers.Catalog.entries @ Multipliers.Catalog.extensions in
    let failures = ref 0 in
    List.iter
      (fun (entry : Multipliers.Catalog.entry) ->
        let spec = entry.build () in
        let stats = Multipliers.Spec.stats spec in
        let corner = Multipliers.Harness.check_corners spec in
        let random = Multipliers.Harness.check_random ~seed:1 spec ~samples in
        let bad = List.length corner + List.length random in
        if bad > 0 then incr failures;
        Printf.printf "%-18s N=%5d LDeff=%6.1f  %s\n%!" entry.label
          stats.cell_total
          (Multipliers.Spec.logical_depth_effective spec)
          (if bad = 0 then "OK" else Printf.sprintf "%d FAILURES" bad))
      all;
    if !failures > 0 then begin
      Printf.printf "\n%d designs FAILED\n" !failures;
      exit 1
    end
    else Printf.printf "\nAll %d designs multiply correctly.\n" (List.length all)
  in
  let doc =
    "Self-test: every generated design (paper set + extensions) against \
     integer multiplication."
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ samples)

let energy_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Table 1 label.")
  in
  let run label =
    let row = Power_core.Paper_data.table1_find label in
    let problem =
      Power_core.Calibration.problem_of_row Device.Technology.ll
        ~f:Power_core.Paper_data.frequency row
    in
    let points = Power_core.Energy.sweep problem in
    let mep = Power_core.Energy.minimum_energy_point problem in
    print (Report.Studies.render_energy points mep);
    Printf.printf
      "\nThe paper's 31.25 MHz operating point costs %.2fx the MEP energy.\n"
      (mep.overhead_at Power_core.Paper_data.frequency)
  in
  let doc = "Energy per operation vs throughput; minimum energy point." in
  Cmd.v (Cmd.info "energy" ~doc) Term.(const run $ arch)

let variation_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Table 1 label.")
  in
  let samples =
    Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Monte Carlo dies.")
  in
  let run jobs obs label samples =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    let row = Power_core.Paper_data.table1_find label in
    let problem =
      Power_core.Calibration.problem_of_row Device.Technology.ll
        ~f:Power_core.Paper_data.frequency row
    in
    let rng = Numerics.Rng.create 2006 in
    print
      (Report.Studies.render_variation
         (Power_core.Variation.monte_carlo ~samples ~rng problem))
  in
  let doc = "Process-variation Monte Carlo on the optimal working point." in
  Cmd.v (Cmd.info "variation" ~doc)
    Term.(const run $ jobs_arg $ obs_arg $ arch $ samples)

let yield_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Table 1 label.")
  in
  let dies =
    Arg.(value & opt int 100_000
         & info [ "dies" ] ~doc:"Monte Carlo dies (scales to millions).")
  in
  let sampler =
    let doc = "Sampler: $(b,pseudo) (SplitMix64) or $(b,sobol) (QMC)." in
    Arg.(value
         & opt (enum [ ("pseudo", `Pseudo); ("sobol", `Sobol) ]) `Pseudo
         & info [ "sampler" ] ~doc)
  in
  let chunk =
    Arg.(value & opt int 4096
         & info [ "chunk" ]
             ~doc:"Dies per pool task (a multiple of the 64-die warm chain).")
  in
  let run jobs obs label dies sampler chunk =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    let row = Power_core.Paper_data.table1_find label in
    let problem =
      Power_core.Calibration.problem_of_row Device.Technology.ll
        ~f:Power_core.Paper_data.frequency row
    in
    let rng = Numerics.Rng.create 2006 in
    print
      (Report.Studies.render_yield
         (Power_core.Variation.yield_mc ~dies ~chunk ~sampler ~rng problem))
  in
  let doc =
    "Streaming parametric-yield Monte Carlo: per-die re-optimised power \
     distribution and yield vs power budget."
  in
  Cmd.v (Cmd.info "yield" ~doc)
    Term.(const run $ jobs_arg $ obs_arg $ arch $ dies $ sampler $ chunk)

let thermal_cmd =
  let arch =
    Arg.(value & opt string "Wallace" & info [ "arch" ] ~doc:"Table 1 label.")
  in
  let instances =
    Arg.(value & opt int 2000
         & info [ "instances" ]
             ~doc:"Multiplier instances on the die (one is thermally inert).")
  in
  let run label instances =
    let f = Power_core.Paper_data.frequency in
    let base = Device.Technology.ll in
    let row = Power_core.Paper_data.table1_find label in
    let problem0 = Power_core.Calibration.problem_of_row base ~f row in
    let optimum_at (tech : Device.Technology.t) =
      (* Leakage magnifies with die temperature; the 300 K calibration of
         everything else stands. *)
      let heated =
        {
          problem0 with
          Power_core.Power_law.tech = tech;
          params =
            {
              problem0.params with
              Power_core.Arch_params.io_cell =
                problem0.params.io_cell *. tech.io /. base.io;
            };
        }
      in
      float_of_int instances
      *. (Power_core.Numerical_opt.optimum heated).total
    in
    let rows =
      List.map
        (fun r_th -> (r_th, Device.Thermal.self_heating ~r_th ~optimum_at base))
        [ 0.0; 40.0; 100.0; 200.0 ]
    in
    Printf.printf "%d instances of '%s' on one die:\n" instances label;
    print (Report.Studies.render_thermal rows)
  in
  let doc = "Self-heating fixpoint: die temperature vs package R_th." in
  Cmd.v (Cmd.info "thermal" ~doc) Term.(const run $ arch $ instances)

let lint_cmd =
  let format =
    let doc = "Output format: $(b,text), $(b,json) or $(b,sarif)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let max_per_rule =
    let doc =
      "Cap the text lines printed per (target, rule) pair; the rest are \
       summarised as a count. JSON and SARIF always carry everything."
    in
    Arg.(value & opt int 8 & info [ "max-per-rule" ] ~docv:"N" ~doc)
  in
  let only =
    let doc =
      "Keep only findings of the given comma-separated rule ids (e.g. \
       $(b,cert.solver-in-enclosure,model.finite)). Unknown ids fail \
       immediately; the summary and exit code reflect the filtered report."
    in
    Arg.(value & opt (some (list string)) None
         & info [ "only" ] ~docv:"RULE-ID,..." ~doc)
  in
  let list_rules =
    let doc = "Print the rule registry (id, severity, title) and exit." in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let run jobs obs format max_per_rule only list_rules =
    set_jobs jobs;
    if list_rules then begin
      List.iter
        (fun (m : Analysis.Rule.meta) ->
          Printf.printf "%-26s %-7s %s\n" m.id
            (Analysis.Diagnostic.severity_to_string m.severity)
            m.title)
        Analysis.Rule.all;
      exit 0
    end;
    Option.iter
      (List.iter (fun id ->
           match Analysis.Rule.find id with
           | _ -> ()
           | exception Not_found ->
             Printf.eprintf
               "optpower: unknown rule id '%s' (see lint --list-rules)\n" id;
             exit 2))
      only;
    let code =
      with_obs obs @@ fun () ->
      let report = Serve.Engine.lint ?only () in
      (match format with
      | `Text -> print (Analysis.Render.text ~max_per_rule report)
      | `Json -> print (Analysis.Render.json report)
      | `Sarif -> print (Analysis.Render.sarif report));
      Analysis.Engine.exit_code report
    in
    exit code
  in
  let doc =
    "Static analysis: netlist lint over the 13-multiplier catalog, \
     model-validity rules over every technology flavor and calibration row, \
     and certificate cross-checks against the interval certifier. \
     Exit code 0 when clean, 1 with warnings, 2 with errors."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ jobs_arg $ obs_arg $ format $ max_per_rule $ only
          $ list_rules)

let certify_cmd =
  let flavor =
    let doc =
      "Restrict to one technology flavor ($(b,ULL), $(b,LL) or $(b,HS)); \
       default: all three."
    in
    Arg.(value
         & opt (some (enum [ ("ULL", Device.Technology.ull);
                             ("LL", Device.Technology.ll);
                             ("HS", Device.Technology.hs) ])) None
         & info [ "tech" ] ~docv:"FLAVOR" ~doc)
  in
  let run jobs obs flavor =
    set_jobs jobs;
    let code =
      with_obs obs @@ fun () ->
      let flavors = Option.map (fun t -> [ t ]) flavor in
      let rows = Serve.Engine.certify ?flavors () in
      print (Report.Certify_report.render rows);
      if Report.Certify_report.violations rows > 0 then 1 else 0
    in
    exit code
  in
  let doc =
    "Certified power bounds: prove a Ptot enclosure and minimiser bracket \
     per paper row and flavor by interval branch-and-bound, cross-check \
     the numerical optimum against it, and exit non-zero on any violated \
     enclosure."
  in
  Cmd.v (Cmd.info "certify" ~doc) Term.(const run $ jobs_arg $ obs_arg $ flavor)

let all_cmd =
  let run jobs obs =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    print (Report.Experiments.render_figure2 (Report.Experiments.figure2 ()));
    print_newline ();
    print (Report.Experiments.render_figure1 (Report.Experiments.figure1 ()));
    print_newline ();
    print (Report.Experiments.render_table1 (Report.Experiments.table1 ()));
    print_newline ();
    print (Report.Experiments.render_wallace (Report.Experiments.table_wallace `Ull));
    print_newline ();
    print (Report.Experiments.render_wallace (Report.Experiments.table_wallace `Hs))
  in
  let doc = "Reproduce every calibrated table and figure in one run." in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ jobs_arg $ obs_arg)

(* The store profile workload runs the same small exploration cold then
   warm against a throwaway store, so the normalized report carries the
   full store.* hit/miss/put fingerprint of one populate + one replay. *)
let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let profile_store_workload () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "optpower-profile-store.%d" (Unix.getpid ()))
  in
  remove_tree dir;
  let axes =
    {
      Power_core.Explorer.bits = 4;
      families = [ Power_core.Explorer.Booth ];
      radices = [ 4 ];
      signednesses = [ Multipliers.Booth.Unsigned ];
      stages = [ 1 ];
      copies = [ 1; 2 ];
      fmults = [ 0.5; 1.0 ];
      techs = [ Device.Technology.ll ];
    }
  in
  let pass () =
    match Power_core.Warm.open_store ~path:dir () with
    | None -> ignore (Power_core.Explorer.explore ~cycles:40 axes)
    | Some st ->
      Fun.protect ~finally:(fun () -> Store.close st)
      @@ fun () ->
      ignore (Power_core.Explorer.explore ~cycles:40 ~store:st axes)
  in
  Fun.protect ~finally:(fun () -> remove_tree dir)
  @@ fun () ->
  pass ();
  pass ()

let profile_cmd =
  let which_arg =
    let doc =
      "Workload to profile: $(b,table1), $(b,fig1), $(b,mc), $(b,lint), \
       $(b,yield), $(b,scratch) or $(b,store)."
    in
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("table1", `Table1); ("fig1", `Fig1); ("mc", `Mc);
                  ("yield", `Yield); ("lint", `Lint); ("scratch", `Scratch);
                  ("store", `Store);
                ]))
          None
      & info [] ~docv:"WORKLOAD" ~doc)
  in
  let normalize_arg =
    let doc =
      "Print the scheduling-independent profile: span call counts only (no \
       wall times), scheduler and cache entries hidden. Byte-identical at \
       any $(b,--jobs) value."
    in
    Arg.(value & flag & info [ "normalize" ] ~doc)
  in
  let run jobs normalize trace which =
    set_jobs jobs;
    Obs.set_enabled true;
    Obs.reset ();
    let name, work =
      match which with
      | `Table1 ->
          ("profile.table1", fun () -> ignore (Report.Experiments.table1 ()))
      | `Fig1 ->
          ("profile.fig1", fun () -> ignore (Report.Experiments.figure1 ()))
      | `Mc ->
          ( "profile.mc",
            fun () ->
              let row = Power_core.Paper_data.table1_find "Wallace" in
              let problem =
                Power_core.Calibration.problem_of_row Device.Technology.ll
                  ~f:Power_core.Paper_data.frequency row
              in
              let rng = Numerics.Rng.create 2006 in
              ignore (Power_core.Variation.monte_carlo ~samples:120 ~rng problem)
          )
      | `Yield ->
          ( "profile.yield",
            fun () ->
              let row = Power_core.Paper_data.table1_find "Wallace" in
              let problem =
                Power_core.Calibration.problem_of_row Device.Technology.ll
                  ~f:Power_core.Paper_data.frequency row
              in
              let rng = Numerics.Rng.create 2006 in
              ignore
                (Power_core.Variation.yield_mc ~dies:20_000 ~sampler:`Sobol
                   ~rng problem) )
      | `Lint -> ("profile.lint", fun () -> ignore (Analysis.Engine.run ()))
      | `Scratch ->
          ( "profile.scratch",
            fun () -> ignore (Report.Experiments.scratch ~cycles:40 ()) )
      | `Store -> ("profile.store", profile_store_workload)
    in
    let t0 = Obs.now_ns () in
    Obs.Span.with_ ~name work;
    let wall_ns = Obs.now_ns () -. t0 in
    print (Obs.Report.profile ~normalize ());
    if not normalize then begin
      let spans_ns = Obs.Report.root_total_ns () in
      Printf.printf
        "\nwall-clock %.1f ms, instrumented root spans %.1f ms (%.1f%%)\n"
        (wall_ns /. 1e6) (spans_ns /. 1e6)
        (100.0 *. spans_ns /. wall_ns)
    end;
    Option.iter
      (fun path ->
        Obs.Report.write_chrome_trace ~path ();
        Printf.printf "Chrome trace written to %s\n" path)
      trace
  in
  let doc =
    "Run one representative workload under full instrumentation and print \
     the span profile tree, counters and histograms. With $(b,--trace) the \
     run is also written as Chrome trace_event JSON."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ jobs_arg $ normalize_arg $ trace_path_arg $ which_arg)

(* Serving: the resident batch solve service and its client (DESIGN.md
   §14). The one-shot [optimum] / [rank] subcommands run the exact same
   Serve.Engine paths the service batches, so a reply from the socket is
   bitwise-identical to the corresponding one-shot output. *)

let tech_arg =
  let doc =
    "Technology flavor: $(b,ULL), $(b,LL) or $(b,HS) (default $(b,LL))."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("ULL", Device.Technology.ull);
             ("LL", Device.Technology.ll);
             ("HS", Device.Technology.hs) ])
        Device.Technology.ll
    & info [ "tech" ] ~docv:"FLAVOR" ~doc)

let json_flag =
  let doc = "Print the reply as wire JSON instead of a table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let socket_arg =
  let doc = "Unix-domain socket path of the service." in
  Arg.(
    value
    & opt string "/tmp/optpower.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let optimum_cmd =
  let arch =
    Arg.(
      value & opt string "RCA"
      & info [ "arch" ] ~docv:"LABEL" ~doc:"Table 1 architecture label.")
  in
  let run obs tech arch json =
    with_obs obs @@ fun () ->
    let p : Power_core.Numerical_opt.point = Serve.Engine.optimum ~tech arch in
    if json then
      print
        (Serve.Json.to_string (Serve.Engine.optimum_json ~tech ~arch p) ^ "\n")
    else
      Printf.printf
        "%s/%s: Vdd=%.3f V  Vth=%.3f V  Pdyn=%.2f uW  Pstat=%.2f uW  \
         Ptot=%.2f uW\n"
        (Device.Technology.name tech)
        arch p.vdd p.vth (p.dynamic *. 1e6) (p.static *. 1e6) (p.total *. 1e6)
  in
  let doc = "Solve one architecture's optimal (Vdd*, Vth*) working point." in
  Cmd.v (Cmd.info "optimum" ~doc)
    Term.(const run $ obs_arg $ tech_arg $ arch $ json_flag)

let rank_cmd =
  let archs =
    let doc =
      "Comma-separated architecture labels (default: the full Table 1 \
       catalog)."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "archs" ] ~docv:"LABEL,..." ~doc)
  in
  let run jobs obs tech archs json =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    let ranked = Serve.Engine.rank ~tech ?archs () in
    if json then
      print (Serve.Json.to_string (Serve.Engine.rank_json ~tech ranked) ^ "\n")
    else begin
      Printf.printf "%-4s %-16s %-8s %-8s %-10s\n" "#" "arch" "Vdd" "Vth"
        "Ptot[uW]";
      List.iteri
        (fun i (arch, (p : Power_core.Numerical_opt.point)) ->
          Printf.printf "%-4d %-16s %-8.3f %-8.3f %-10.2f\n" (i + 1) arch
            p.vdd p.vth (p.total *. 1e6))
        ranked
    end
  in
  let doc =
    "Rank architectures by optimal total power (solved as one warm-start \
     continuation family)."
  in
  Cmd.v (Cmd.info "rank" ~doc)
    Term.(const run $ jobs_arg $ obs_arg $ tech_arg $ archs $ json_flag)

let serve_cmd =
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded request-queue capacity; submitters block when it is \
             full (backpressure, nothing is dropped).")
  in
  let batch =
    Arg.(
      value & opt int 32
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Max concurrent requests coalesced into one pool dispatch.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the session result cache (identical calls re-solve).")
  in
  let run jobs obs socket queue batch no_cache store_path no_store =
    set_jobs jobs;
    with_obs obs @@ fun () ->
    let store = open_warm ~no_store store_path in
    let config =
      {
        Serve.Session.jobs;
        queue_capacity = queue;
        max_batch = batch;
        cache = not no_cache;
        store;
      }
    in
    (* Block the shutdown signals before spawning any thread (the mask is
       inherited) and dedicate a watcher thread to them: with every
       systhread parked in a blocking syscall an asynchronous
       [Sys.Signal_handle] may never get a safepoint to run on, whereas
       [sigwait] delivery is deterministic. *)
    ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ]);
    let session = Serve.Session.create ~config () in
    let listener = Serve.Server.listen_unix session ~path:socket in
    let _watcher =
      Thread.create
        (fun () ->
          ignore (Thread.wait_signal [ Sys.sigint; Sys.sigterm ]);
          Serve.Server.stop listener)
        ()
    in
    Printf.printf "optpower serve: listening on %s (pool size %d%s)\n%!"
      socket
      (Parallel.Pool.size (Serve.Session.pool session))
      (match store with
      | Some st -> Printf.sprintf ", warm store %s" (Store.path st)
      | None -> ", cold");
    Serve.Server.wait listener;
    Printf.printf "optpower serve: drained, bye\n%!"
  in
  let doc =
    "Run the resident batch solve service: JSON-lines requests over a Unix \
     socket, coalesced across clients into shared pool dispatches, warm \
     answers from the on-disk store across restarts. SIGINT or SIGTERM \
     drains gracefully and exits."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ jobs_arg $ obs_arg $ socket_arg $ queue $ batch $ no_cache
      $ store_path_arg $ no_store_arg)

let store_cmd =
  let action =
    let doc =
      "Action: $(b,stats) (print entry and traffic counts), $(b,gc) \
       (compact the log into a fresh snapshot) or $(b,clear) (drop every \
       entry)."
    in
    Arg.(
      required
      & pos 0
          (some (enum [ ("stats", `Stats); ("gc", `Gc); ("clear", `Clear) ]))
          None
      & info [] ~docv:"ACTION" ~doc)
  in
  let run action store_path =
    let readonly = action = `Stats in
    match open_warm ~readonly ~no_store:false store_path with
    | None ->
      Printf.eprintf "optpower store: cannot open the store\n";
      exit 1
    | Some st ->
      Fun.protect ~finally:(fun () -> Store.close st)
      @@ fun () ->
      (match action with
      | `Stats ->
        let s = Store.stats st in
        Printf.printf "store %s\n" s.Store.path;
        Printf.printf "  fingerprint  %s\n" (Store.fingerprint st);
        Printf.printf "  mode         %s\n"
          (match s.mode with
          | Store.Read_write -> "read-write"
          | Store.Read_only -> "read-only");
        Printf.printf "  entries      %d\n" s.entries;
        Printf.printf "  log bytes    %d\n" s.log_bytes;
        Printf.printf "  index bytes  %d\n" s.index_bytes;
        if s.invalidated then
          Printf.printf "  (stale fingerprint discarded at open)\n";
        if s.recovered > 0 then
          Printf.printf "  (%d torn/corrupt records dropped at open)\n"
            s.recovered
      | `Gc ->
        let retired = Store.gc st in
        Printf.printf "store %s: compacted, %d superseded records retired\n"
          (Store.path st) retired
      | `Clear ->
        Store.clear st;
        Printf.printf "store %s: cleared\n" (Store.path st))
  in
  let doc =
    "Inspect or maintain the on-disk warm store ($(b,stats), $(b,gc), \
     $(b,clear))."
  in
  Cmd.v (Cmd.info "store" ~doc) Term.(const run $ action $ store_path_arg)

let client_cmd =
  let meth =
    let doc =
      "Request method: $(b,optimum), $(b,sweep), $(b,rank), $(b,lint), \
       $(b,certify), $(b,explore) or $(b,store_stats)."
    in
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("optimum", "optimum"); ("sweep", "sweep");
                  ("rank", "rank"); ("lint", "lint"); ("certify", "certify");
                  ("explore", "explore"); ("store_stats", "store_stats") ]))
          None
      & info [] ~docv:"METHOD" ~doc)
  in
  let arch =
    Arg.(
      value
      & opt (some string) None
      & info [ "arch" ] ~docv:"LABEL"
          ~doc:"Architecture label (optimum, sweep).")
  in
  let tech =
    Arg.(
      value
      & opt (some string) None
      & info [ "tech" ] ~docv:"FLAVOR"
          ~doc:
            "Technology flavor: ULL, LL or HS (certify also accepts \
             $(b,all)).")
  in
  let samples =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~docv:"N" ~doc:"Sweep sample count.")
  in
  let archs =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "archs" ] ~docv:"LABEL,..." ~doc:"Rank architecture subset.")
  in
  let only =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "only" ] ~docv:"RULE-ID,..." ~doc:"Lint rule filter.")
  in
  let bits =
    Arg.(
      value
      & opt (some int) None
      & info [ "bits" ] ~docv:"W" ~doc:"Explore operand width.")
  in
  let radices =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "radix" ] ~docv:"R,..." ~doc:"Explore radix axis.")
  in
  let stages =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "stages" ] ~docv:"N,..." ~doc:"Explore pipeline-depth axis.")
  in
  let copies =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "copies" ] ~docv:"K,..." ~doc:"Explore parallelisation axis.")
  in
  let signed =
    Arg.(value & flag & info [ "signed" ] ~doc:"Explore signed operands.")
  in
  let fmults =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "fmult" ] ~docv:"X,..." ~doc:"Explore frequency multiples.")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ] ~doc:"Explore exhaustively (no pruning).")
  in
  let families =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "family" ] ~docv:"F,..."
          ~doc:"Explore substrate families (booth, dadda, wallace).")
  in
  let max_latency =
    Arg.(
      value
      & opt (some pos_float_conv) None
      & info [ "max-latency" ] ~docv:"D"
          ~doc:"Explore effective-logic-depth cap.")
  in
  let max_area =
    Arg.(
      value
      & opt (some pos_float_conv) None
      & info [ "max-area" ] ~docv:"CELLS" ~doc:"Explore cell-count cap.")
  in
  let run socket meth arch tech samples archs only bits radices stages copies
      signed fmults no_prune families max_latency max_area =
    let int_arr l =
      Serve.Json.Arr (List.map (fun v -> Serve.Json.Num (float_of_int v)) l)
    in
    let params =
      List.filter_map Fun.id
        [
          Option.map (fun a -> ("arch", Serve.Json.Str a)) arch;
          Option.map (fun t -> ("tech", Serve.Json.Str t)) tech;
          Option.map
            (fun n -> ("samples", Serve.Json.Num (float_of_int n)))
            samples;
          Option.map
            (fun l ->
              ("archs", Serve.Json.Arr (List.map (fun s -> Serve.Json.Str s) l)))
            archs;
          Option.map
            (fun l ->
              ("only", Serve.Json.Arr (List.map (fun s -> Serve.Json.Str s) l)))
            only;
          Option.map
            (fun b -> ("bits", Serve.Json.Num (float_of_int b)))
            bits;
          Option.map (fun l -> ("radices", int_arr l)) radices;
          Option.map (fun l -> ("stages", int_arr l)) stages;
          Option.map (fun l -> ("copies", int_arr l)) copies;
          (if signed then Some ("signed", Serve.Json.Bool true) else None);
          Option.map
            (fun l ->
              ("fmults",
               Serve.Json.Arr (List.map (fun v -> Serve.Json.Num v) l)))
            fmults;
          (if no_prune then Some ("prune", Serve.Json.Bool false) else None);
          Option.map
            (fun l ->
              ( "families",
                Serve.Json.Arr (List.map (fun s -> Serve.Json.Str s) l) ))
            families;
          Option.map (fun v -> ("max_latency", Serve.Json.Num v)) max_latency;
          Option.map (fun v -> ("max_area", Serve.Json.Num v)) max_area;
        ]
    in
    let client = Serve.Client.connect socket in
    let result = Serve.Client.rpc client ~meth params in
    Serve.Client.close client;
    match result with
    | Ok payload -> print (Serve.Json.to_string payload ^ "\n")
    | Error (code, msg) ->
      Printf.eprintf "optpower client: %s: %s\n" code msg;
      exit 1
  in
  let doc =
    "Send one request to a running $(b,optpower serve) and print the JSON \
     reply payload."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ socket_arg $ meth $ arch $ tech $ samples $ archs $ only
          $ bits $ radices $ stages $ copies $ signed $ fmults $ no_prune
          $ families $ max_latency $ max_area)

let main =
  let doc =
    "Reproduction of 'Architectural and Technology Influence on the Optimal \
     Total Power Consumption' (Schuster et al., DATE 2006)"
  in
  Cmd.group (Cmd.info "optpower" ~version:"1.0.0" ~doc)
    [
      table1_cmd;
      wallace_cmd "table3" `Ull "Reproduce Table 3 (Wallace family, ULL).";
      wallace_cmd "table4" `Hs "Reproduce Table 4 (Wallace family, HS).";
      table2_cmd;
      fig1_cmd;
      fig2_cmd;
      sketch_cmd;
      scratch_cmd;
      sweep_cmd;
      ablate_cmd;
      freq_cmd;
      widths_cmd;
      extensions_cmd;
      explore_cmd;
      faults_cmd;
      prove_cmd;
      export_cmd;
      vcd_cmd;
      check_cmd;
      trace_cmd;
      energy_cmd;
      variation_cmd;
      yield_cmd;
      thermal_cmd;
      lint_cmd;
      certify_cmd;
      optimum_cmd;
      rank_cmd;
      serve_cmd;
      store_cmd;
      client_cmd;
      profile_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main)
